//! The HSU instruction set (paper Table I).
//!
//! Each instruction is a CISC operation: it receives per-thread operands
//! through the register file, fetches its node data from the L1 via the warp
//! buffer's FIFO access queue, performs the computation in the unified
//! datapath, and writes up to four result registers.

use std::fmt;

use crate::config::HsuConfig;
use hsu_geometry::point::Metric;

/// Operation selector for the unified datapath.
///
/// `RayIntersect` further resolves to the ray-box or ray-triangle operating
/// mode once the fetched node's kind is known (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HsuOpcode {
    /// Baseline RT instruction: one ray-triangle or up to four ray-box tests.
    RayIntersect,
    /// 16-wide squared Euclidean distance beat (HSU extension).
    PointEuclid,
    /// 8-wide dot-product + candidate-norm beat (HSU extension).
    PointAngular,
    /// Up to 36 parallel key/separator comparisons (HSU extension).
    KeyCompare,
}

impl HsuOpcode {
    /// Returns `true` for the opcodes added by the HSU over the baseline RT
    /// unit.
    #[inline]
    pub fn is_extension(self) -> bool {
        !matches!(self, HsuOpcode::RayIntersect)
    }

    /// The assembler mnemonic used in traces and stat dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            HsuOpcode::RayIntersect => "RAY_INTERSECT",
            HsuOpcode::PointEuclid => "POINT_EUCLID",
            HsuOpcode::PointAngular => "POINT_ANGULAR",
            HsuOpcode::KeyCompare => "KEY_COMPARE",
        }
    }

    /// Number of 32-bit result registers written per thread (paper §IV-D/E:
    /// four for `RAY_INTERSECT`, one scalar for Euclid, two for angular, a
    /// bit vector — up to 36 bits, so two registers — for key compare).
    pub fn result_registers(self) -> usize {
        match self {
            HsuOpcode::RayIntersect => 4,
            HsuOpcode::PointEuclid => 1,
            HsuOpcode::PointAngular => 2,
            HsuOpcode::KeyCompare => 2,
        }
    }
}

impl fmt::Display for HsuOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One HSU instruction as issued by a single thread.
///
/// A 32-thread warp instruction carries up to 32 of these (one per active
/// lane); the warp buffer gathers each lane's node data before the warp is
/// scheduled into the single-lane pipeline.
///
/// # Examples
///
/// ```
/// use hsu_core::isa::{HsuInstruction, HsuOpcode};
/// let beat = HsuInstruction::point_euclid(0x4000, 64, true);
/// assert_eq!(beat.opcode, HsuOpcode::PointEuclid);
/// assert!(beat.accumulate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HsuInstruction {
    /// Operation selector.
    pub opcode: HsuOpcode,
    /// Byte address of the node / candidate data to fetch.
    pub node_ptr: u64,
    /// Bytes the CISC fetch reads from that address.
    pub fetch_bytes: u64,
    /// Multi-beat accumulate flag (paper §IV-F). Only meaningful for the two
    /// distance opcodes: while set, the partial sum stays in the datapath's
    /// accumulator and the arbiter locks scheduling to the issuing sub-core.
    pub accumulate: bool,
}

impl HsuInstruction {
    /// A `RAY_INTERSECT` fetching `fetch_bytes` of node data at `node_ptr`.
    pub fn ray_intersect(node_ptr: u64, fetch_bytes: u64) -> Self {
        HsuInstruction {
            opcode: HsuOpcode::RayIntersect,
            node_ptr,
            fetch_bytes,
            accumulate: false,
        }
    }

    /// A `POINT_EUCLID` beat.
    pub fn point_euclid(candidate_ptr: u64, fetch_bytes: u64, accumulate: bool) -> Self {
        HsuInstruction {
            opcode: HsuOpcode::PointEuclid,
            node_ptr: candidate_ptr,
            fetch_bytes,
            accumulate,
        }
    }

    /// A `POINT_ANGULAR` beat.
    pub fn point_angular(candidate_ptr: u64, fetch_bytes: u64, accumulate: bool) -> Self {
        HsuInstruction {
            opcode: HsuOpcode::PointAngular,
            node_ptr: candidate_ptr,
            fetch_bytes,
            accumulate,
        }
    }

    /// A `KEY_COMPARE` fetching up to 36 separators.
    pub fn key_compare(node_ptr: u64, fetch_bytes: u64) -> Self {
        HsuInstruction {
            opcode: HsuOpcode::KeyCompare,
            node_ptr,
            fetch_bytes,
            accumulate: false,
        }
    }

    /// Expands a full `dim`-dimensional distance computation into its beat
    /// sequence, exactly as the compiler does (§III-B/IV-F): every beat but
    /// the last carries `accumulate = 1`; candidate data advances by the beat
    /// fetch size.
    pub fn distance_sequence(
        cfg: &HsuConfig,
        metric: Metric,
        candidate_ptr: u64,
        dim: usize,
    ) -> Vec<HsuInstruction> {
        let width = cfg.width_for(metric);
        let beats = cfg.beats_for(metric, dim);
        let beat_bytes = (width * std::mem::size_of::<f32>()) as u64;
        (0..beats)
            .map(|b| {
                let remaining = dim - b * width;
                let lanes = remaining.min(width);
                let bytes = (lanes * std::mem::size_of::<f32>()) as u64;
                let ptr = candidate_ptr + b as u64 * beat_bytes;
                let accumulate = b + 1 < beats;
                match metric {
                    Metric::Euclidean => HsuInstruction::point_euclid(ptr, bytes, accumulate),
                    Metric::Angular => HsuInstruction::point_angular(ptr, bytes, accumulate),
                }
            })
            .collect()
    }
}

/// Per-thread results returned through the register file.
#[derive(Debug, Clone, PartialEq)]
pub enum HsuResult {
    /// Ray-box: up to four child pointers sorted by closest hit, `None` for
    /// misses (a null pointer in hardware).
    BoxHits {
        /// `(child ptr, entry distance)` pairs, closest first.
        sorted: Vec<Option<(u64, f32)>>,
    },
    /// Ray-triangle: hit status, id, and the undivided distance ratio.
    TriangleHit {
        /// `true` if the ray intersected the triangle.
        hit: bool,
        /// Identifier of the tested triangle.
        triangle_id: u32,
        /// Hit distance numerator (valid when `hit`).
        t_num: f32,
        /// Hit distance denominator (valid when `hit`).
        t_denom: f32,
    },
    /// Euclid beat result. `None` while accumulating (nothing is written to
    /// the result buffer), the completed scalar on the final beat.
    EuclidSum(Option<f32>),
    /// Angular beat result: `(dot_sum, norm_sum)` on the final beat.
    AngularSums(Option<(f32, f32)>),
    /// Key-compare bit vector: bit *i* set iff `key >= separator[i]`.
    KeyMask {
        /// Result bits, LSB = first separator.
        bits: u64,
        /// Number of separators compared.
        count: u32,
    },
}

impl HsuResult {
    /// For a `KeyMask`, the index of the child to descend to: the number of
    /// separators `<= key`, i.e. the population count of the mask.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a `KeyMask`.
    pub fn key_child_index(&self) -> usize {
        match self {
            HsuResult::KeyMask { bits, .. } => bits.count_ones() as usize,
            other => panic!("key_child_index on non-KeyMask result {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_and_registers() {
        assert_eq!(HsuOpcode::RayIntersect.mnemonic(), "RAY_INTERSECT");
        assert_eq!(HsuOpcode::RayIntersect.result_registers(), 4);
        assert_eq!(HsuOpcode::PointEuclid.result_registers(), 1);
        assert_eq!(HsuOpcode::PointAngular.result_registers(), 2);
        assert_eq!(HsuOpcode::KeyCompare.result_registers(), 2);
        assert_eq!(HsuOpcode::PointEuclid.to_string(), "POINT_EUCLID");
    }

    #[test]
    fn extensions_flagged() {
        assert!(!HsuOpcode::RayIntersect.is_extension());
        assert!(HsuOpcode::PointEuclid.is_extension());
        assert!(HsuOpcode::PointAngular.is_extension());
        assert!(HsuOpcode::KeyCompare.is_extension());
    }

    #[test]
    fn distance_sequence_sets_accumulate_on_all_but_last() {
        let cfg = HsuConfig::default();
        let seq = HsuInstruction::distance_sequence(&cfg, Metric::Angular, 0x1000, 65);
        assert_eq!(seq.len(), 9);
        for (i, ins) in seq.iter().enumerate() {
            assert_eq!(ins.accumulate, i + 1 < 9, "beat {i}");
            assert_eq!(ins.opcode, HsuOpcode::PointAngular);
        }
        // First 8 beats fetch 32 B, the last fetches the single leftover lane.
        assert_eq!(seq[0].fetch_bytes, 32);
        assert_eq!(seq[8].fetch_bytes, 4);
        // Addresses stride by the full beat width.
        assert_eq!(seq[1].node_ptr - seq[0].node_ptr, 32);
    }

    #[test]
    fn single_beat_sequence_never_accumulates() {
        let cfg = HsuConfig::default();
        let seq = HsuInstruction::distance_sequence(&cfg, Metric::Euclidean, 0, 3);
        assert_eq!(seq.len(), 1);
        assert!(!seq[0].accumulate);
        assert_eq!(seq[0].fetch_bytes, 12);
    }

    #[test]
    fn key_child_index_counts_bits() {
        let r = HsuResult::KeyMask {
            bits: 0b1011,
            count: 4,
        };
        assert_eq!(r.key_child_index(), 3);
    }

    #[test]
    #[should_panic(expected = "non-KeyMask")]
    fn key_child_index_rejects_other_variants() {
        HsuResult::EuclidSum(None).key_child_index();
    }
}
