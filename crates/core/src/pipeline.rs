//! The unified single-lane datapath pipeline (paper §IV-B, Figs. 5 & 6).
//!
//! One thread's operation enters the 9-stage pipeline per cycle; control
//! logic enables the functional units each stage needs for the operation's
//! *operating mode* and modes may be freely interleaved (a ray-box test can
//! follow a Euclidean beat the next cycle). Throughput is therefore one
//! intersection/distance/key operation per cycle regardless of warp
//! divergence — the paper's answer to poor SIMD efficiency.
//!
//! The model tracks per-mode issue counts and per-stage occupancy, which the
//! `hsu-rtl` crate combines with its functional-unit inventory to estimate
//! dynamic power (Fig. 16).

use std::collections::VecDeque;
use std::fmt;

use crate::config::PIPELINE_DEPTH;

/// The five operating modes of the unified datapath (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingMode {
    /// Four parallel ray-box slab tests plus closest-hit sort.
    RayBox,
    /// One watertight ray-triangle test.
    RayTriangle,
    /// One 16-wide squared-Euclidean-distance beat.
    Euclid,
    /// One 8-wide dot + norm beat.
    Angular,
    /// Up to 36 parallel key comparisons.
    KeyCompare,
}

impl OperatingMode {
    /// All modes, in the paper's Fig. 6 column order.
    pub const ALL: [OperatingMode; 5] = [
        OperatingMode::RayBox,
        OperatingMode::RayTriangle,
        OperatingMode::Euclid,
        OperatingMode::Angular,
        OperatingMode::KeyCompare,
    ];

    /// Returns `true` for the modes only present with the HSU extensions.
    #[inline]
    pub fn is_extension(self) -> bool {
        matches!(
            self,
            OperatingMode::Euclid | OperatingMode::Angular | OperatingMode::KeyCompare
        )
    }

    /// Short label used in stat dumps and figures.
    pub fn label(self) -> &'static str {
        match self {
            OperatingMode::RayBox => "ray-box",
            OperatingMode::RayTriangle => "ray-tri",
            OperatingMode::Euclid => "euclid",
            OperatingMode::Angular => "angular",
            OperatingMode::KeyCompare => "key-cmp",
        }
    }

    /// Index into dense per-mode arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OperatingMode::RayBox => 0,
            OperatingMode::RayTriangle => 1,
            OperatingMode::Euclid => 2,
            OperatingMode::Angular => 3,
            OperatingMode::KeyCompare => 4,
        }
    }
}

impl fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An operation completing this cycle: its mode and the caller-supplied tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Operating mode of the completed operation.
    pub mode: OperatingMode,
    /// Opaque tag supplied at issue (e.g. warp-buffer entry × lane).
    pub tag: u64,
}

/// Aggregate statistics of a pipeline's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Operations issued, indexed by [`OperatingMode::index`].
    pub issued: [u64; 5],
    /// Operations completed, indexed by [`OperatingMode::index`].
    pub completed: [u64; 5],
    /// Cycles in which an operation was issued (issue-slot utilization).
    pub issue_busy_cycles: u64,
}

impl PipelineStats {
    /// Total completed operations across all modes.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Completed operations per cycle — the paper's HSU "performance" metric
    /// for the roofline (§VI-B). Zero if no cycles have elapsed.
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_completed() as f64 / self.cycles as f64
        }
    }
}

/// Cycle-accurate model of the 9-stage single-lane pipeline.
///
/// # Examples
///
/// ```
/// use hsu_core::pipeline::{DatapathPipeline, OperatingMode};
///
/// let mut pipe = DatapathPipeline::new();
/// assert!(pipe.issue(OperatingMode::RayBox, 1));
/// assert!(pipe.issue_blocked()); // one issue per cycle
/// let mut done = Vec::new();
/// for _ in 0..9 {
///     done.extend(pipe.tick());
/// }
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].tag, 1);
/// ```
#[derive(Debug)]
pub struct DatapathPipeline {
    /// `stages[0]` is the issue stage; ops shift toward `stages[depth-1]`.
    stages: VecDeque<Option<Completion>>,
    issued_this_cycle: bool,
    stats: PipelineStats,
}

impl Default for DatapathPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl DatapathPipeline {
    /// Creates an empty pipeline of [`PIPELINE_DEPTH`] stages.
    pub fn new() -> Self {
        DatapathPipeline {
            stages: (0..PIPELINE_DEPTH).map(|_| None).collect(),
            issued_this_cycle: false,
            stats: PipelineStats::default(),
        }
    }

    /// Returns `true` if the single issue slot was already used this cycle.
    #[inline]
    pub fn issue_blocked(&self) -> bool {
        self.issued_this_cycle
    }

    /// Issues one thread's operation into stage 1. Returns `false` (and does
    /// nothing) if an operation was already issued this cycle.
    pub fn issue(&mut self, mode: OperatingMode, tag: u64) -> bool {
        if self.issued_this_cycle {
            return false;
        }
        debug_assert!(self.stages[0].is_none(), "stage 1 occupied at issue time");
        self.stages[0] = Some(Completion { mode, tag });
        self.issued_this_cycle = true;
        self.stats.issued[mode.index()] += 1;
        self.stats.issue_busy_cycles += 1;
        true
    }

    /// Advances every in-flight operation by one stage and ends the cycle.
    /// Operations leaving the last stage are returned (at most one, since the
    /// initiation interval is one).
    pub fn tick(&mut self) -> Vec<Completion> {
        self.stats.cycles += 1;
        self.issued_this_cycle = false;
        let mut out = Vec::new();
        if let Some(done) = self.stages.pop_back().flatten() {
            self.stats.completed[done.mode.index()] += 1;
            out.push(done);
        }
        self.stages.push_front(None);
        out
    }

    /// Accounts `cycles` idle cycles at once — the event-driven simulator
    /// calls this instead of ticking an empty pipeline cycle by cycle, so
    /// [`PipelineStats::cycles`] stays identical to the stepped loop's.
    ///
    /// # Panics
    ///
    /// Panics (debug) if operations are in flight: a non-empty pipeline
    /// changes state every cycle and must be ticked.
    pub fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(
            self.is_empty(),
            "fast-forward across an occupied pipeline would skip completions"
        );
        self.issued_this_cycle = false;
        self.stats.cycles += cycles;
    }

    /// Number of operations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.stages.iter().flatten().count()
    }

    /// Returns `true` when no operations are in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight() == 0
    }

    /// Modes currently occupying each stage, front (issue) to back; used by
    /// the power model to compute per-stage activity.
    pub fn stage_modes(&self) -> Vec<Option<OperatingMode>> {
        self.stages.iter().map(|s| s.map(|c| c.mode)).collect()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_nine() {
        let mut pipe = DatapathPipeline::new();
        pipe.issue(OperatingMode::Euclid, 42);
        let mut cycles = 0;
        loop {
            let done = pipe.tick();
            cycles += 1;
            if !done.is_empty() {
                assert_eq!(done[0].tag, 42);
                break;
            }
            assert!(cycles <= PIPELINE_DEPTH as u64, "op never completed");
        }
        assert_eq!(cycles, PIPELINE_DEPTH as u64);
    }

    #[test]
    fn fast_forward_matches_idle_ticks() {
        // N idle ticks and one fast_forward(N) must leave identical stats.
        let mut ticked = DatapathPipeline::new();
        let mut skipped = DatapathPipeline::new();
        for _ in 0..37 {
            assert!(ticked.tick().is_empty());
        }
        skipped.fast_forward(37);
        assert_eq!(ticked.stats(), skipped.stats());
        // Both can issue normally afterwards.
        assert!(ticked.issue(OperatingMode::Euclid, 0));
        assert!(skipped.issue(OperatingMode::Euclid, 0));
    }

    #[test]
    fn one_issue_per_cycle() {
        let mut pipe = DatapathPipeline::new();
        assert!(pipe.issue(OperatingMode::RayBox, 0));
        assert!(!pipe.issue(OperatingMode::RayBox, 1));
        pipe.tick();
        assert!(pipe.issue(OperatingMode::RayBox, 1));
    }

    #[test]
    fn mixed_modes_fully_pipeline() {
        // "a thread executing a ray-box test can be scheduled the cycle after
        //  a thread executing a ray-triangle test" (§IV-B).
        let mut pipe = DatapathPipeline::new();
        let pattern = [
            OperatingMode::RayTriangle,
            OperatingMode::RayBox,
            OperatingMode::Euclid,
            OperatingMode::Angular,
            OperatingMode::KeyCompare,
        ];
        let mut completions = Vec::new();
        for cycle in 0..200u64 {
            let mode = pattern[(cycle % 5) as usize];
            assert!(pipe.issue(mode, cycle));
            completions.extend(pipe.tick());
        }
        // After warm-up, exactly one op completes per cycle.
        assert_eq!(completions.len(), 200 - PIPELINE_DEPTH + 1);
        // Order is FIFO.
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(c.tag, i as u64);
        }
        let stats = pipe.stats();
        assert_eq!(stats.issued.iter().sum::<u64>(), 200);
        assert!(stats.ops_per_cycle() > 0.9);
    }

    #[test]
    fn bubbles_propagate() {
        let mut pipe = DatapathPipeline::new();
        pipe.issue(OperatingMode::RayBox, 0);
        pipe.tick();
        pipe.tick(); // bubble
        pipe.issue(OperatingMode::RayBox, 1);
        let mut tags = Vec::new();
        for _ in 0..PIPELINE_DEPTH + 2 {
            tags.extend(pipe.tick().into_iter().map(|c| c.tag));
        }
        assert_eq!(tags, vec![0, 1]);
        assert!(pipe.is_empty());
    }

    #[test]
    fn stage_modes_reflect_occupancy() {
        let mut pipe = DatapathPipeline::new();
        pipe.issue(OperatingMode::Angular, 0);
        let modes = pipe.stage_modes();
        assert_eq!(modes[0], Some(OperatingMode::Angular));
        assert!(modes[1..].iter().all(|m| m.is_none()));
        pipe.tick();
        let modes = pipe.stage_modes();
        assert_eq!(modes[1], Some(OperatingMode::Angular));
    }

    #[test]
    fn mode_metadata() {
        assert_eq!(OperatingMode::ALL.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for m in OperatingMode::ALL {
            assert!(seen.insert(m.index()), "duplicate index");
            assert!(!m.label().is_empty());
        }
        assert!(!OperatingMode::RayBox.is_extension());
        assert!(!OperatingMode::RayTriangle.is_extension());
        assert!(OperatingMode::Euclid.is_extension());
    }

    #[test]
    fn stats_accumulate() {
        let mut pipe = DatapathPipeline::new();
        for i in 0..20 {
            pipe.issue(OperatingMode::KeyCompare, i);
            pipe.tick();
        }
        for _ in 0..PIPELINE_DEPTH {
            pipe.tick();
        }
        let s = pipe.stats();
        assert_eq!(s.issued[OperatingMode::KeyCompare.index()], 20);
        assert_eq!(s.completed[OperatingMode::KeyCompare.index()], 20);
        assert_eq!(s.total_completed(), 20);
        assert_eq!(s.issue_busy_cycles, 20);
    }
}
