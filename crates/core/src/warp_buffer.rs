//! The RT/HSU unit's warp buffer (paper §IV-A, Fig. 4).
//!
//! A dispatched warp instruction is parked in a warp-buffer entry while each
//! active lane's node data is gathered from the L1 through the FIFO memory
//! access queue. The entry tracks an *active mask* (lanes participating in
//! the instruction) and a *valid mask* (lanes whose data has arrived). When
//! `valid == active`, the entry is ready for the single-lane datapath, which
//! drains one lane per cycle; when every active lane has completed, the
//! result buffer writes back to the register file and the entry is freed.
//!
//! Buffering several warps at once is what gives the unit its memory-level
//! parallelism — the Fig. 11 sensitivity study sweeps this capacity.

use crate::isa::HsuInstruction;

/// Number of threads per warp.
pub const WARP_WIDTH: usize = 32;

/// Identifier of a warp-buffer entry.
pub type EntryId = usize;

/// State of one buffered warp instruction.
#[derive(Debug, Clone)]
pub struct WarpEntry {
    /// Which warp (scheduler-global id) this instruction belongs to.
    pub warp_id: usize,
    /// Which of the four sub-cores dispatched it.
    pub sub_core: usize,
    /// Lanes participating in the instruction.
    pub active_mask: u32,
    /// Lanes whose node data has been gathered.
    pub valid_mask: u32,
    /// Lanes already issued into the datapath pipeline.
    pub issued_mask: u32,
    /// Lanes whose computation has completed (result buffered).
    pub completed_mask: u32,
    /// Per-lane instruction (node pointer differs per lane).
    pub lanes: Vec<Option<HsuInstruction>>,
}

impl WarpEntry {
    /// Returns `true` once every active lane's operand data has arrived.
    #[inline]
    pub fn operands_ready(&self) -> bool {
        self.valid_mask & self.active_mask == self.active_mask
    }

    /// Returns `true` when all active lanes have been issued to the pipeline.
    #[inline]
    pub fn fully_issued(&self) -> bool {
        self.issued_mask & self.active_mask == self.active_mask
    }

    /// Returns `true` when all active lanes have completed — the result
    /// buffer can write back to the register file.
    #[inline]
    pub fn writeback_ready(&self) -> bool {
        self.completed_mask & self.active_mask == self.active_mask
    }

    /// Lowest-numbered active lane that is ready but not yet issued, skipping
    /// inactive lanes as the datapath scheduler does (§IV-B).
    #[inline]
    pub fn next_issuable_lane(&self) -> Option<usize> {
        let pending = self.active_mask & self.valid_mask & !self.issued_mask;
        if pending == 0 {
            None
        } else {
            Some(pending.trailing_zeros() as usize)
        }
    }
}

/// The warp buffer: a small fully-associative pool of [`WarpEntry`]s.
///
/// # Examples
///
/// ```
/// use hsu_core::isa::HsuInstruction;
/// use hsu_core::warp_buffer::WarpBuffer;
///
/// let mut buf = WarpBuffer::new(8);
/// let lanes = vec![Some(HsuInstruction::ray_intersect(0x100, 128)); 2];
/// let id = buf.allocate(0, 0, 0b11, lanes).expect("space available");
/// buf.mark_valid(id, 0);
/// buf.mark_valid(id, 1);
/// assert!(buf.entry(id).operands_ready());
/// ```
#[derive(Debug)]
pub struct WarpBuffer {
    entries: Vec<Option<WarpEntry>>,
}

impl WarpBuffer {
    /// Creates a buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "warp buffer needs at least one entry");
        WarpBuffer {
            entries: (0..capacity).map(|_| None).collect(),
        }
    }

    /// Total number of entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Returns `true` if no entry is free.
    pub fn is_full(&self) -> bool {
        self.entries.iter().all(|e| e.is_some())
    }

    /// Allocates an entry for a dispatched warp instruction. Returns `None`
    /// when the buffer is full (the dispatching sub-core must stall).
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() > 32`, if `active_mask` is zero, or if an
    /// active lane has no instruction.
    pub fn allocate(
        &mut self,
        warp_id: usize,
        sub_core: usize,
        active_mask: u32,
        mut lanes: Vec<Option<HsuInstruction>>,
    ) -> Option<EntryId> {
        assert!(
            lanes.len() <= WARP_WIDTH,
            "at most {WARP_WIDTH} lanes per warp"
        );
        assert!(
            active_mask != 0,
            "warp instruction needs at least one active lane"
        );
        lanes.resize(WARP_WIDTH, None);
        for (lane, slot) in lanes.iter().enumerate() {
            if active_mask & (1 << lane) != 0 {
                assert!(slot.is_some(), "active lane {lane} has no instruction");
            }
        }
        let slot = self.entries.iter().position(|e| e.is_none())?;
        self.entries[slot] = Some(WarpEntry {
            warp_id,
            sub_core,
            active_mask,
            valid_mask: 0,
            issued_mask: 0,
            completed_mask: 0,
            lanes,
        });
        Some(slot)
    }

    /// Borrow of an entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is vacant.
    pub fn entry(&self, id: EntryId) -> &WarpEntry {
        self.entries[id].as_ref().expect("vacant warp buffer entry")
    }

    /// Mutable borrow of an entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is vacant.
    pub fn entry_mut(&mut self, id: EntryId) -> &mut WarpEntry {
        self.entries[id].as_mut().expect("vacant warp buffer entry")
    }

    /// Marks `lane`'s node data as gathered (memory response arrived).
    ///
    /// # Panics
    ///
    /// Panics if `id` is vacant or `lane >= 32`.
    pub fn mark_valid(&mut self, id: EntryId, lane: usize) {
        assert!(lane < WARP_WIDTH, "lane {lane} out of range");
        self.entry_mut(id).valid_mask |= 1 << lane;
    }

    /// Marks `lane` as issued into the datapath.
    pub fn mark_issued(&mut self, id: EntryId, lane: usize) {
        assert!(lane < WARP_WIDTH, "lane {lane} out of range");
        self.entry_mut(id).issued_mask |= 1 << lane;
    }

    /// Marks `lane`'s computation complete (result captured in the result
    /// buffer).
    pub fn mark_completed(&mut self, id: EntryId, lane: usize) {
        assert!(lane < WARP_WIDTH, "lane {lane} out of range");
        self.entry_mut(id).completed_mask |= 1 << lane;
    }

    /// Frees an entry after writeback.
    ///
    /// # Panics
    ///
    /// Panics if the entry is vacant or not writeback-ready.
    pub fn release(&mut self, id: EntryId) -> WarpEntry {
        let entry = self.entries[id].take().expect("vacant warp buffer entry");
        assert!(
            entry.writeback_ready(),
            "released entry has incomplete lanes"
        );
        entry
    }

    /// Iterator over occupied `(id, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, &WarpEntry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
    }

    /// Occupied entries that are ready to feed the datapath: operands
    /// gathered and at least one active lane unissued.
    pub fn ready_entries(&self) -> impl Iterator<Item = (EntryId, &WarpEntry)> + '_ {
        self.iter()
            .filter(|(_, e)| e.operands_ready() && !e.fully_issued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_instr(ptr: u64) -> Option<HsuInstruction> {
        Some(HsuInstruction::ray_intersect(ptr, 128))
    }

    fn full_lanes(mask: u32) -> Vec<Option<HsuInstruction>> {
        (0..WARP_WIDTH)
            .map(|l| {
                if mask & (1 << l) != 0 {
                    lane_instr(l as u64 * 0x10)
                } else {
                    None
                }
            })
            .collect()
    }

    #[test]
    fn allocate_until_full() {
        let mut buf = WarpBuffer::new(2);
        assert_eq!(buf.capacity(), 2);
        let a = buf.allocate(0, 0, 1, full_lanes(1)).unwrap();
        let b = buf.allocate(1, 1, 1, full_lanes(1)).unwrap();
        assert_ne!(a, b);
        assert!(buf.is_full());
        assert!(buf.allocate(2, 2, 1, full_lanes(1)).is_none());
        assert_eq!(buf.occupancy(), 2);
    }

    #[test]
    fn lifecycle_sparse_mask() {
        let mut buf = WarpBuffer::new(4);
        // Lanes 3 and 17 active — a sparse active mask.
        let mask = (1 << 3) | (1 << 17);
        let id = buf.allocate(5, 2, mask, full_lanes(mask)).unwrap();
        assert!(!buf.entry(id).operands_ready());
        buf.mark_valid(id, 3);
        assert!(!buf.entry(id).operands_ready());
        buf.mark_valid(id, 17);
        assert!(buf.entry(id).operands_ready());
        assert_eq!(buf.ready_entries().count(), 1);

        // Issue skips inactive lanes.
        assert_eq!(buf.entry(id).next_issuable_lane(), Some(3));
        buf.mark_issued(id, 3);
        assert_eq!(buf.entry(id).next_issuable_lane(), Some(17));
        buf.mark_issued(id, 17);
        assert!(buf.entry(id).fully_issued());
        assert_eq!(buf.ready_entries().count(), 0);

        buf.mark_completed(id, 3);
        assert!(!buf.entry(id).writeback_ready());
        buf.mark_completed(id, 17);
        assert!(buf.entry(id).writeback_ready());
        let entry = buf.release(id);
        assert_eq!(entry.warp_id, 5);
        assert_eq!(buf.occupancy(), 0);
    }

    #[test]
    fn partial_validity_allows_partial_issue() {
        // The datapath can only consume lanes whose data arrived; ready
        // requires ALL active lanes valid (valid == active), per the paper.
        let mut buf = WarpBuffer::new(1);
        let mask = 0b111;
        let id = buf.allocate(0, 0, mask, full_lanes(mask)).unwrap();
        buf.mark_valid(id, 1);
        assert!(!buf.entry(id).operands_ready());
        assert_eq!(buf.ready_entries().count(), 0);
    }

    #[test]
    #[should_panic(expected = "no instruction")]
    fn active_lane_without_instruction_rejected() {
        let mut buf = WarpBuffer::new(1);
        let lanes = vec![None; WARP_WIDTH];
        buf.allocate(0, 0, 1, lanes);
    }

    #[test]
    #[should_panic(expected = "incomplete lanes")]
    fn early_release_rejected() {
        let mut buf = WarpBuffer::new(1);
        let id = buf.allocate(0, 0, 1, full_lanes(1)).unwrap();
        buf.release(id);
    }

    #[test]
    #[should_panic(expected = "at least one active lane")]
    fn empty_mask_rejected() {
        let mut buf = WarpBuffer::new(1);
        buf.allocate(0, 0, 0, full_lanes(0));
    }
}
