//! Packed node formats fetched from memory by HSU CISC instructions.
//!
//! The type of test a `RAY_INTERSECT` performs is determined by the *node
//! fetched from memory* (paper §IV-D), so the node encodings are part of the
//! ISA. The HSU adds point-leaf and key nodes for the new instructions; point
//! primitives are first-class, which is where the 9:1 memory advantage over
//! triangle-encoded keys (§VI-G) comes from.

use hsu_geometry::{Aabb, Triangle};

/// Discriminates what a node pointer refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Internal BVH node holding up to four child AABBs.
    Box,
    /// Leaf holding one triangle primitive.
    Triangle,
    /// Leaf referencing one N-dimensional point (HSU extension).
    Point,
    /// B-tree internal node holding separator keys (HSU extension).
    Key,
}

/// A child slot of a [`BoxNode`]: bounding box, pointer and pointee kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxChild {
    /// Bounds of the child subtree.
    pub aabb: Aabb,
    /// Node pointer (byte address in the simulated address space).
    pub ptr: u64,
    /// What `ptr` points to.
    pub kind: NodeKind,
}

/// An internal BVH node with up to four children (BVH4), the operand of a
/// ray-box `RAY_INTERSECT`.
///
/// # Examples
///
/// ```
/// use hsu_core::node::{BoxChild, BoxNode, NodeKind};
/// use hsu_geometry::{Aabb, Vec3};
///
/// let node = BoxNode::new(vec![BoxChild {
///     aabb: Aabb::new(Vec3::ZERO, Vec3::splat(1.0)),
///     ptr: 0x100,
///     kind: NodeKind::Triangle,
/// }]);
/// assert_eq!(node.children().len(), 1);
/// assert_eq!(BoxNode::BYTE_SIZE, 128);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoxNode {
    children: Vec<BoxChild>,
}

impl BoxNode {
    /// Bytes fetched per box node: four children × (6 × f32 bounds + 8-byte
    /// pointer/kind word) = 128 B — exactly one V100 cache sector pair and the
    /// figure used for the roofline's operand-traffic accounting.
    pub const BYTE_SIZE: u64 = 128;

    /// Maximum number of children (BVH4).
    pub const MAX_CHILDREN: usize = 4;

    /// Creates a box node.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or holds more than four entries.
    pub fn new(children: Vec<BoxChild>) -> Self {
        assert!(
            !children.is_empty() && children.len() <= Self::MAX_CHILDREN,
            "box node must have 1..=4 children, got {}",
            children.len()
        );
        BoxNode { children }
    }

    /// The child slots.
    #[inline]
    pub fn children(&self) -> &[BoxChild] {
        &self.children
    }
}

/// A triangle leaf node, the operand of a ray-triangle `RAY_INTERSECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct TriangleNode {
    /// The triangle primitive (9 × f32).
    pub triangle: Triangle,
    /// Identifier returned with the hit result.
    pub triangle_id: u32,
}

impl TriangleNode {
    /// Bytes fetched per triangle node: 9 floats plus the id, padded to 48 B.
    /// This is the 288-bit primitive the RTIndeX comparison (§VI-G) charges
    /// for each triangle-encoded key.
    pub const BYTE_SIZE: u64 = 48;
}

/// A point leaf referencing one N-dimensional point (HSU extension).
///
/// The candidate vector itself lives in the dataset's flat buffer; the HSU
/// fetches it beat-by-beat (64 B per Euclidean beat, 32 B per angular beat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointLeaf {
    /// Index of the point in its [`hsu_geometry::point::PointSet`].
    pub point_id: u32,
    /// Byte address of the first coordinate.
    pub data_ptr: u64,
    /// Dimensionality of the point.
    pub dim: u32,
}

impl PointLeaf {
    /// Bytes of leaf metadata (id + pointer + dim, padded): 16 B. For a
    /// 32-bit key store this is the "single point" fetch the paper contrasts
    /// with a 288-bit triangle.
    pub const BYTE_SIZE: u64 = 16;

    /// Bytes of candidate data fetched by one beat of `width` lanes.
    #[inline]
    pub fn beat_bytes(width: usize) -> u64 {
        (width * std::mem::size_of::<f32>()) as u64
    }
}

/// A B-tree internal node of separator keys, the operand of `KEY_COMPARE`.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyNode {
    separators: Vec<f32>,
}

impl KeyNode {
    /// Creates a key node from separator values.
    ///
    /// # Panics
    ///
    /// Panics if `separators` is empty or not sorted in non-decreasing order
    /// (the B-tree invariant `KEY_COMPARE` relies on).
    pub fn new(separators: Vec<f32>) -> Self {
        assert!(
            !separators.is_empty(),
            "key node needs at least one separator"
        );
        assert!(
            separators.windows(2).all(|w| w[0] <= w[1]),
            "separators must be sorted non-decreasing"
        );
        KeyNode { separators }
    }

    /// The separator values.
    #[inline]
    pub fn separators(&self) -> &[f32] {
        &self.separators
    }

    /// Bytes fetched by one `KEY_COMPARE` of up to `width` separators.
    #[inline]
    pub fn fetch_bytes(&self, width: usize) -> u64 {
        (self.separators.len().min(width) * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_geometry::Vec3;

    fn child(ptr: u64) -> BoxChild {
        BoxChild {
            aabb: Aabb::new(Vec3::ZERO, Vec3::splat(1.0)),
            ptr,
            kind: NodeKind::Box,
        }
    }

    #[test]
    fn box_node_accepts_one_to_four_children() {
        for n in 1..=4 {
            let node = BoxNode::new((0..n).map(|i| child(i as u64)).collect());
            assert_eq!(node.children().len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "1..=4 children")]
    fn box_node_rejects_five_children() {
        let _ = BoxNode::new((0..5).map(|i| child(i as u64)).collect());
    }

    #[test]
    #[should_panic(expected = "1..=4 children")]
    fn box_node_rejects_empty() {
        let _ = BoxNode::new(vec![]);
    }

    #[test]
    fn key_node_requires_sorted_separators() {
        let node = KeyNode::new(vec![1.0, 2.0, 2.0, 5.0]);
        assert_eq!(node.separators().len(), 4);
        assert_eq!(node.fetch_bytes(36), 16);
        assert_eq!(node.fetch_bytes(2), 8);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn key_node_rejects_unsorted() {
        let _ = KeyNode::new(vec![2.0, 1.0]);
    }

    #[test]
    fn memory_footprints_match_paper_accounting() {
        // Euclid beat: 16 lanes x 4 B = 64 B; angular: 8 x 4 = 32 B (§VI-B).
        assert_eq!(PointLeaf::beat_bytes(16), 64);
        assert_eq!(PointLeaf::beat_bytes(8), 32);
        // Triangle primitive is 288 bits = 36 B, padded to 48; the 9:1
        // key-store advantage (288-bit triangle vs 32-bit key) follows.
        const { assert!(TriangleNode::BYTE_SIZE >= 36) };
    }
}
