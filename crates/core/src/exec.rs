//! Functional semantics of HSU instructions.
//!
//! These functions compute exactly what the datapath writes back to the
//! register file, given the operands from the register file and the node data
//! gathered by the warp buffer. They are pure and deterministic; the timing
//! model in `hsu-sim` wraps them with cycle accounting.

use crate::isa::HsuResult;
use crate::node::{BoxNode, KeyNode, TriangleNode};
use hsu_geometry::Ray;

/// Executes the ray-box operating mode: up to four slab tests plus the
/// closest-hit sort (§IV-B "Sort closest hit" stage).
///
/// Misses produce `None` slots ("null pointers"); hits are ordered by entry
/// distance, closest first. The output always has exactly
/// [`BoxNode::MAX_CHILDREN`] slots, matching the four fixed result registers.
pub fn execute_box(ray: &Ray, node: &BoxNode, t_max: f32) -> HsuResult {
    let mut hits: Vec<(u64, f32)> = node
        .children()
        .iter()
        .filter_map(|child| {
            ray.intersect_aabb(&child.aabb, t_max)
                .map(|h| (child.ptr, h.t_near))
        })
        .collect();
    hits.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut sorted: Vec<Option<(u64, f32)>> = hits.into_iter().map(Some).collect();
    sorted.resize(BoxNode::MAX_CHILDREN, None);
    HsuResult::BoxHits { sorted }
}

/// Executes the ray-triangle operating mode: one watertight test, returning
/// the undivided `t_num / t_denom` ratio (§IV-D).
pub fn execute_triangle(ray: &Ray, node: &TriangleNode, t_max: f32) -> HsuResult {
    match node.triangle.intersect(ray, t_max) {
        Some(hit) => HsuResult::TriangleHit {
            hit: true,
            triangle_id: node.triangle_id,
            t_num: hit.t_num,
            t_denom: hit.t_denom,
        },
        None => HsuResult::TriangleHit {
            hit: false,
            triangle_id: node.triangle_id,
            t_num: 0.0,
            t_denom: 1.0,
        },
    }
}

/// Executes `KEY_COMPARE`: compares `key` against up to `width` separators,
/// setting bit *i* when `key >= separator[i]` (paper Table I: "0 if the key
/// is less than the separator value and 1 otherwise").
///
/// # Panics
///
/// Panics if `width` exceeds 64 (the bit vector is modelled as a `u64`; the
/// hardware width is 36).
pub fn execute_key_compare(key: f32, node: &KeyNode, width: usize) -> HsuResult {
    assert!(
        width <= 64,
        "key-compare width {width} exceeds the 64-bit result model"
    );
    let mut bits = 0u64;
    let n = node.separators().len().min(width);
    for (i, &sep) in node.separators()[..n].iter().enumerate() {
        if key >= sep {
            bits |= 1 << i;
        }
    }
    HsuResult::KeyMask {
        bits,
        count: n as u32,
    }
}

/// The multi-beat accumulator (paper §IV-F).
///
/// While the accumulate operand bit is set, partial results stay in this
/// register instead of being written to the result buffer; the final beat
/// (accumulate = 0) drains it. One accumulator exists per datapath, which is
/// why the arbiter must lock out other sub-cores mid-sequence.
///
/// # Examples
///
/// ```
/// use hsu_core::exec::DistanceAccumulator;
/// let mut acc = DistanceAccumulator::default();
/// assert!(acc.euclid_beat(&[1.0, 2.0], &[3.0, 4.0], true).is_none());
/// let total = acc.euclid_beat(&[5.0], &[7.0], false).unwrap();
/// assert_eq!(total, 4.0 + 4.0 + 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DistanceAccumulator {
    dist_sum: f32,
    dot_sum: f32,
    norm_sum: f32,
    pending: bool,
}

impl DistanceAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if a partial sum is pending (an accumulate sequence is
    /// in flight).
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// Executes one Euclidean beat over this beat's lane slices.
    ///
    /// Returns `None` while accumulating; the total squared distance once the
    /// final beat (`accumulate = false`) executes, which also clears the
    /// accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn euclid_beat(&mut self, q: &[f32], c: &[f32], accumulate: bool) -> Option<f32> {
        assert_eq!(q.len(), c.len(), "beat lane counts must match");
        let partial: f32 = q.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
        self.dist_sum += partial;
        if accumulate {
            self.pending = true;
            None
        } else {
            let total = self.dist_sum;
            *self = Self::default();
            Some(total)
        }
    }

    /// Executes one angular beat; returns `(dot_sum, norm_sum)` on the final
    /// beat.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn angular_beat(&mut self, q: &[f32], c: &[f32], accumulate: bool) -> Option<(f32, f32)> {
        assert_eq!(q.len(), c.len(), "beat lane counts must match");
        self.dot_sum += q.iter().zip(c).map(|(a, b)| a * b).sum::<f32>();
        self.norm_sum += c.iter().map(|x| x * x).sum::<f32>();
        if accumulate {
            self.pending = true;
            None
        } else {
            let sums = (self.dot_sum, self.norm_sum);
            *self = Self::default();
            Some(sums)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{BoxChild, NodeKind};
    use hsu_geometry::point;
    use hsu_geometry::{Aabb, Triangle, Vec3};

    fn make_box_node() -> BoxNode {
        // Four boxes along +x at distances 1, 3, 5 and one off-axis miss.
        let mk = |x0: f32| Aabb::new(Vec3::new(x0, -1.0, -1.0), Vec3::new(x0 + 1.0, 1.0, 1.0));
        BoxNode::new(vec![
            BoxChild {
                aabb: mk(5.0),
                ptr: 50,
                kind: NodeKind::Box,
            },
            BoxChild {
                aabb: mk(1.0),
                ptr: 10,
                kind: NodeKind::Box,
            },
            BoxChild {
                aabb: Aabb::new(Vec3::new(1.0, 5.0, 5.0), Vec3::new(2.0, 6.0, 6.0)),
                ptr: 99,
                kind: NodeKind::Box,
            },
            BoxChild {
                aabb: mk(3.0),
                ptr: 30,
                kind: NodeKind::Box,
            },
        ])
    }

    #[test]
    fn box_hits_sorted_closest_first_with_null_misses() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let HsuResult::BoxHits { sorted } = execute_box(&ray, &make_box_node(), f32::INFINITY)
        else {
            panic!("wrong variant")
        };
        let ptrs: Vec<_> = sorted.iter().map(|s| s.map(|(p, _)| p)).collect();
        assert_eq!(ptrs, vec![Some(10), Some(30), Some(50), None]);
        // Distances are monotone.
        let ts: Vec<f32> = sorted.iter().flatten().map(|(_, t)| *t).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn box_t_max_culls_far_children() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let HsuResult::BoxHits { sorted } = execute_box(&ray, &make_box_node(), 3.5) else {
            panic!("wrong variant")
        };
        let hits = sorted.iter().flatten().count();
        assert_eq!(hits, 2); // boxes at 1 and 3; the one at 5 culled
    }

    #[test]
    fn triangle_hit_and_miss() {
        let node = TriangleNode {
            triangle: Triangle::new(
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(1.0, 0.0, 2.0),
                Vec3::new(0.0, 1.0, 2.0),
            ),
            triangle_id: 7,
        };
        let hit_ray = Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::new(0.0, 0.0, 1.0));
        match execute_triangle(&hit_ray, &node, f32::INFINITY) {
            HsuResult::TriangleHit {
                hit,
                triangle_id,
                t_num,
                t_denom,
            } => {
                assert!(hit);
                assert_eq!(triangle_id, 7);
                assert!((t_num / t_denom - 2.0).abs() < 1e-5);
            }
            other => panic!("wrong variant {other:?}"),
        }
        let miss_ray = Ray::new(Vec3::new(5.0, 5.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        match execute_triangle(&miss_ray, &node, f32::INFINITY) {
            HsuResult::TriangleHit { hit, .. } => assert!(!hit),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn key_compare_bit_semantics() {
        let node = KeyNode::new(vec![10.0, 20.0, 30.0]);
        // key below all separators -> all zero -> child 0.
        let r = execute_key_compare(5.0, &node, 36);
        assert_eq!(r.key_child_index(), 0);
        // key between 20 and 30 -> two bits set -> child 2.
        let r = execute_key_compare(25.0, &node, 36);
        assert_eq!(r.key_child_index(), 2);
        // equality counts as >= (non-decreasing separators).
        let r = execute_key_compare(20.0, &node, 36);
        assert_eq!(r.key_child_index(), 2);
        // key above all -> child 3.
        let r = execute_key_compare(99.0, &node, 36);
        assert_eq!(r.key_child_index(), 3);
    }

    #[test]
    fn key_compare_width_truncates() {
        let node = KeyNode::new((0..40).map(|i| i as f32).collect());
        let HsuResult::KeyMask { count, .. } = execute_key_compare(100.0, &node, 36) else {
            panic!("wrong variant")
        };
        assert_eq!(count, 36);
    }

    #[test]
    fn accumulator_matches_reference_over_many_dims() {
        for dim in [1usize, 8, 15, 16, 17, 65, 96, 200, 784] {
            let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin()).collect();
            let c: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).cos()).collect();
            let mut acc = DistanceAccumulator::new();
            let mut result = None;
            let beats = dim.div_ceil(16);
            for b in 0..beats {
                let lo = b * 16;
                let hi = (lo + 16).min(dim);
                result = acc.euclid_beat(&q[lo..hi], &c[lo..hi], b + 1 < beats);
            }
            let expected = point::euclidean_squared(&q, &c);
            let got = result.expect("final beat must produce a value");
            assert!(
                (got - expected).abs() < 1e-3 * (1.0 + expected),
                "dim {dim}"
            );
            assert!(!acc.is_pending(), "accumulator must clear after final beat");
        }
    }

    #[test]
    fn angular_accumulator_matches_reference() {
        let dim = 65usize;
        let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin()).collect();
        let c: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut acc = DistanceAccumulator::new();
        let mut out = None;
        let beats = dim.div_ceil(8);
        for b in 0..beats {
            let lo = b * 8;
            let hi = (lo + 8).min(dim);
            out = acc.angular_beat(&q[lo..hi], &c[lo..hi], b + 1 < beats);
        }
        let (dot_sum, norm_sum) = out.unwrap();
        assert!((dot_sum - point::dot(&q, &c)).abs() < 1e-3);
        assert!((norm_sum - point::norm_squared(&c)).abs() < 1e-3);
    }

    #[test]
    fn accumulator_pending_flag() {
        let mut acc = DistanceAccumulator::new();
        assert!(!acc.is_pending());
        acc.euclid_beat(&[1.0], &[2.0], true);
        assert!(acc.is_pending());
        acc.euclid_beat(&[1.0], &[1.0], false);
        assert!(!acc.is_pending());
    }
}
