//! Unit-level testbench for the HSU front end + datapath, mirroring the
//! paper's RTL verification: "test cases covering all ray-box, ray-triangle,
//! Euclidean, Angular, and mixed modes" (§VI-K).

use hsu_core::arbiter::SubCoreArbiter;
use hsu_core::exec::{self, DistanceAccumulator};
use hsu_core::node::{BoxChild, BoxNode, KeyNode, NodeKind, TriangleNode};
use hsu_core::pipeline::{DatapathPipeline, OperatingMode};
use hsu_core::warp_buffer::{WarpBuffer, WARP_WIDTH};
use hsu_core::{HsuConfig, HsuInstruction};
use hsu_geometry::{Aabb, Ray, Triangle, Vec3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random-stimulus verification of all five modes' functional results, with
/// the operations interleaved through the pipeline like the mixed-mode RTL
/// test.
#[test]
fn mixed_mode_random_stimulus() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut pipe = DatapathPipeline::new();

    for trial in 0..200u64 {
        let mode = OperatingMode::ALL[(trial % 5) as usize];
        assert!(pipe.issue(mode, trial));
        pipe.tick();

        match mode {
            OperatingMode::RayBox => {
                let ray = Ray::new(
                    Vec3::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0), -3.0),
                    Vec3::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5), 1.0),
                );
                let children: Vec<BoxChild> = (0..4)
                    .map(|i| {
                        let lo = Vec3::new(
                            rng.gen_range(-2.0..1.0),
                            rng.gen_range(-2.0..1.0),
                            rng.gen_range(-1.0..2.0),
                        );
                        BoxChild {
                            aabb: Aabb::new(lo, lo + Vec3::splat(rng.gen_range(0.1..1.5))),
                            ptr: i,
                            kind: NodeKind::Box,
                        }
                    })
                    .collect();
                let node = BoxNode::new(children.clone());
                let hsu_core::isa::HsuResult::BoxHits { sorted } =
                    exec::execute_box(&ray, &node, f32::INFINITY)
                else {
                    panic!("wrong variant")
                };
                // Cross-check each reported hit against the scalar slab test.
                for &(ptr, t) in sorted.iter().flatten() {
                    let child = &children[ptr as usize];
                    let reference = ray
                        .intersect_aabb(&child.aabb, f32::INFINITY)
                        .expect("reported hit must be a real hit");
                    assert!((reference.t_near - t).abs() < 1e-5);
                }
            }
            OperatingMode::RayTriangle => {
                let tri = Triangle::new(
                    Vec3::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), 1.0),
                    Vec3::new(rng.gen_range(1.0..2.0), rng.gen_range(-1.0..1.0), 1.0),
                    Vec3::new(rng.gen_range(-1.0..1.0), rng.gen_range(1.0..2.0), 1.0),
                );
                let ray = Ray::new(
                    Vec3::new(rng.gen_range(-0.5..1.5), rng.gen_range(-0.5..1.5), 0.0),
                    Vec3::new(0.0, 0.0, 1.0),
                );
                let node = TriangleNode {
                    triangle: tri,
                    triangle_id: trial as u32,
                };
                match exec::execute_triangle(&ray, &node, f32::INFINITY) {
                    hsu_core::isa::HsuResult::TriangleHit {
                        hit,
                        t_num,
                        t_denom,
                        ..
                    } => {
                        let reference = tri.intersect(&ray, f32::INFINITY);
                        assert_eq!(hit, reference.is_some(), "hit status mismatch");
                        if let Some(r) = reference {
                            assert!((t_num / t_denom - r.t()).abs() < 1e-5);
                        }
                    }
                    other => panic!("wrong variant {other:?}"),
                }
            }
            OperatingMode::Euclid | OperatingMode::Angular => {
                let dim = rng.gen_range(1..200usize);
                let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let c: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut acc = DistanceAccumulator::new();
                if mode == OperatingMode::Euclid {
                    let beats = dim.div_ceil(16);
                    let mut out = None;
                    for b in 0..beats {
                        let lo = b * 16;
                        let hi = (lo + 16).min(dim);
                        out = acc.euclid_beat(&q[lo..hi], &c[lo..hi], b + 1 < beats);
                    }
                    let expect = hsu_geometry::point::euclidean_squared(&q, &c);
                    assert!((out.unwrap() - expect).abs() < 1e-3 * (1.0 + expect));
                } else {
                    let beats = dim.div_ceil(8);
                    let mut out = None;
                    for b in 0..beats {
                        let lo = b * 8;
                        let hi = (lo + 8).min(dim);
                        out = acc.angular_beat(&q[lo..hi], &c[lo..hi], b + 1 < beats);
                    }
                    let (dot, norm) = out.unwrap();
                    assert!((dot - hsu_geometry::point::dot(&q, &c)).abs() < 1e-3);
                    assert!((norm - hsu_geometry::point::norm_squared(&c)).abs() < 1e-3);
                }
            }
            OperatingMode::KeyCompare => {
                let n = rng.gen_range(1..=36usize);
                let mut seps: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
                seps.sort_by(f32::total_cmp);
                let key = rng.gen_range(-10.0..1010.0f32);
                let node = KeyNode::new(seps.clone());
                let result = exec::execute_key_compare(key, &node, 36);
                let expect = seps.iter().filter(|&&s| key >= s).count();
                assert_eq!(result.key_child_index(), expect);
            }
        }
    }

    // Drain: the pipeline completed every op exactly once.
    while !pipe.is_empty() {
        pipe.tick();
    }
    assert_eq!(pipe.stats().total_completed(), 200);
    for mode in OperatingMode::ALL {
        assert_eq!(pipe.stats().completed[mode.index()], 40);
    }
}

/// Full front-end flow: four sub-cores dispatch through the arbiter into the
/// warp buffer, lanes gather operands, the datapath drains them, entries
/// write back — all masks conserved.
#[test]
fn front_end_conserves_lanes_under_contention() {
    let cfg = HsuConfig::default();
    let mut buffer = WarpBuffer::new(cfg.warp_buffer_entries);
    let mut arbiter = SubCoreArbiter::new(4);
    let mut pipe = DatapathPipeline::new();
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    let total_warps = 64usize;
    let mut dispatched = 0usize;
    let mut retired = 0usize;
    let mut next_warp = 0usize;
    let mut lanes_seen = 0u64;
    let mut lanes_expected = 0u64;
    // (entry, lane) pairs waiting for "memory".
    let mut pending_mem: Vec<(usize, usize, u64)> = Vec::new();
    let mut cycle = 0u64;

    while retired < total_warps {
        cycle += 1;
        assert!(cycle < 100_000, "testbench deadlock");

        // Dispatch: all four sub-cores contend every cycle.
        if dispatched < total_warps && !buffer.is_full() {
            let requesting = [true; 4];
            if let Some(_sc) = arbiter.grant(&requesting, &[false; 4]) {
                let mask: u32 = rng.gen_range(1..=u32::MAX);
                let lanes: Vec<Option<HsuInstruction>> = (0..WARP_WIDTH)
                    .map(|l| {
                        (mask & (1 << l) != 0)
                            .then(|| HsuInstruction::ray_intersect(l as u64 * 64, 64))
                    })
                    .collect();
                let entry = buffer.allocate(next_warp, _sc, mask, lanes).expect("space");
                lanes_expected += mask.count_ones() as u64;
                for l in 0..WARP_WIDTH {
                    if mask & (1 << l) != 0 {
                        pending_mem.push((entry, l, cycle + rng.gen_range(1..40)));
                    }
                }
                next_warp += 1;
                dispatched += 1;
            }
        }

        // Memory responses arrive.
        pending_mem.retain(|&(entry, lane, at)| {
            if at <= cycle {
                buffer.mark_valid(entry, lane);
                false
            } else {
                true
            }
        });

        // Datapath issues one ready lane per cycle.
        let pick = buffer
            .ready_entries()
            .map(|(id, e)| (id, e.next_issuable_lane().expect("ready entry has a lane")))
            .next();
        if let Some((entry, lane)) = pick {
            assert!(pipe.issue(OperatingMode::RayBox, (entry as u64) << 8 | lane as u64));
            buffer.mark_issued(entry, lane);
        }

        // Completions come back 9 cycles later.
        for done in pipe.tick() {
            let entry = (done.tag >> 8) as usize;
            let lane = (done.tag & 0xff) as usize;
            buffer.mark_completed(entry, lane);
            lanes_seen += 1;
        }

        // Writeback.
        let finished: Vec<usize> = buffer
            .iter()
            .filter(|(_, e)| e.writeback_ready())
            .map(|(id, _)| id)
            .collect();
        for id in finished {
            buffer.release(id);
            retired += 1;
        }
    }

    assert_eq!(retired, total_warps);
    assert_eq!(
        lanes_seen, lanes_expected,
        "every active lane completed once"
    );
    assert_eq!(buffer.occupancy(), 0);
}
