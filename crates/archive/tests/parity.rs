//! The parity-locked round-trip discipline: for every producer that writes
//! through the archive crate, **encode → decode → re-encode must be
//! byte-identical**. Equal content must always produce equal bytes — the
//! warm-cache golden guarantee (a cached suite re-run is byte-identical to
//! a cold one) rests on exactly this property, so it is pinned here for
//! traces, datasets, and each index type, plus the container format itself
//! under proptest-driven random payload sizes and chunk boundaries.

use proptest::prelude::*;

use hsu_archive::{kind, ArchiveWriter, SliceArchive};

// ---------------------------------------------------------------------------
// Container-level parity
// ---------------------------------------------------------------------------

/// Re-encodes a parsed archive from its decoded entries alone. Groups are
/// reopened from each entry's path, which works because the writer emits
/// chunks in depth-first group order.
fn reencode(bytes: &[u8], key: Option<&str>) -> Vec<u8> {
    let archive = SliceArchive::parse(bytes).expect("original must parse");
    let mut w = ArchiveWriter::new();
    if let Some(key) = key {
        w.set_key(key);
    }
    let mut open: Vec<String> = Vec::new();
    for entry in archive.entries() {
        if key.is_some() && entry.path == hsu_archive::KEY_PATH {
            continue; // set_key re-created it
        }
        let mut parts: Vec<&str> = entry.path.split('/').collect();
        let name = parts.pop().expect("chunk path has a name");
        // Close groups that are no longer on the path, open the new ones.
        let common = open
            .iter()
            .zip(&parts)
            .take_while(|(a, b)| a.as_str() == **b)
            .count();
        for _ in common..open.len() {
            w.end_group();
            open.pop();
        }
        for part in &parts[common..] {
            w.begin_group(part);
            open.push((*part).to_string());
        }
        let payload = archive.chunk_bytes(entry).expect("chunk must verify");
        w.add_chunk(name, entry.kind, payload);
    }
    for _ in 0..open.len() {
        w.end_group();
    }
    w.finish()
}

#[test]
fn container_reencode_is_byte_identical() {
    let mut w = ArchiveWriter::new();
    w.set_key("parity-key");
    w.begin_group("a");
    w.add_chunk("one", kind::META, b"hello");
    w.begin_group("nested");
    w.add_chunk("two", kind::TRACE, &[0u8; 4096]);
    w.end_group();
    w.add_chunk("three", kind::SCALAR, &[]);
    w.end_group();
    w.begin_group("b");
    w.add_chunk("four", kind::POINTS, &[7u8; 13]);
    w.end_group();
    let bytes = w.finish();
    assert_eq!(reencode(&bytes, Some("parity-key")), bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random payload sizes (including empty and footer/index-boundary
    /// straddling sizes) and random group fan-out: the decoded entries
    /// always re-encode to the original bytes.
    #[test]
    fn random_archives_reencode_byte_identical(
        groups in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 1..4),
            1..5,
        ),
    ) {
        let mut w = ArchiveWriter::new();
        for (gi, chunks) in groups.iter().enumerate() {
            w.begin_group(&format!("g{gi}"));
            for (ci, payload) in chunks.iter().enumerate() {
                let k = kind::ALL[(gi * 3 + ci) % kind::ALL.len()];
                w.add_chunk(&format!("c{ci}"), k, payload);
            }
            w.end_group();
        }
        let bytes = w.finish();
        prop_assert_eq!(reencode(&bytes, None), bytes);
    }

    /// Payload round-trip at every size: what goes in comes out, verified
    /// against the per-chunk checksum, for payloads crossing the footer
    /// alignment every way.
    #[test]
    fn payload_sizes_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut w = ArchiveWriter::new();
        w.add_chunk("blob", kind::META, &payload);
        let bytes = w.finish();
        let archive = SliceArchive::parse(&bytes).expect("parse");
        let got = archive.read("blob", kind::META).expect("read");
        prop_assert_eq!(got, payload.as_slice());
    }

    /// Writer determinism: encoding the same content twice yields the same
    /// bytes (no timestamps, no padding, no iteration-order dependence).
    #[test]
    fn equal_content_produces_equal_bytes(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let build = || {
            let mut w = ArchiveWriter::new();
            w.set_key("det");
            w.begin_group("g");
            w.add_chunk("c", kind::TRACE, &payload);
            w.end_group();
            w.finish()
        };
        prop_assert_eq!(build(), build());
    }
}

// ---------------------------------------------------------------------------
// Producer-level parity: traces, datasets, each index type
// ---------------------------------------------------------------------------

fn sample_points(n: usize, dim: usize, seed: u64) -> hsu_geometry::point::PointSet {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
    hsu_geometry::point::PointSet::from_rows(dim, data)
}

#[test]
fn trace_archive_parity() {
    use hsu_sim::archive_io::{decode_trace_archive, encode_trace_archive};
    use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};

    let mut kernel = KernelTrace::new("parity");
    for t in 0..40u64 {
        let mut tt = ThreadTrace::new();
        tt.push(ThreadOp::Alu {
            count: 1 + (t % 3) as u32,
        });
        tt.push(ThreadOp::Load {
            addr: t * 64,
            bytes: 8,
        });
        kernel.push_thread(tt);
    }
    let key = "trace-parity-key";
    let bytes = encode_trace_archive(key, &[("hsu", &kernel)]).unwrap();
    let decoded = decode_trace_archive(&bytes, key, &["hsu"]).unwrap();
    let again = encode_trace_archive(key, &[("hsu", &decoded[0])]).unwrap();
    assert_eq!(again, bytes, "trace archive re-encode drifted");
    assert_eq!(decoded[0], kernel);
}

#[test]
fn dataset_points_parity() {
    use hsu_datasets::archive_io::{points_from_chunk, points_to_chunk};
    let points = sample_points(257, 5, 11);
    let chunk = points_to_chunk(&points);
    let restored = points_from_chunk(&chunk, "data/points").unwrap();
    assert_eq!(
        points_to_chunk(&restored),
        chunk,
        "points re-encode drifted"
    );
    assert_eq!(restored.as_flat(), points.as_flat());
}

#[test]
fn dataset_keys_parity() {
    use hsu_datasets::archive_io::{keys_from_chunk, keys_to_chunk};
    let keys: Vec<(u32, u64)> = (0..513u32)
        .map(|i| (i.wrapping_mul(2654435761), u64::from(i)))
        .collect();
    let chunk = keys_to_chunk(&keys);
    let restored = keys_from_chunk(&chunk, "data/keys").unwrap();
    assert_eq!(keys_to_chunk(&restored), chunk, "keys re-encode drifted");
    assert_eq!(restored, keys);
}

#[test]
fn graph_index_parity() {
    use hsu_graph::archive_io::{graph_from_chunk, graph_to_chunk};
    use hsu_graph::{GraphConfig, HnswGraph};
    let data = sample_points(300, 8, 3);
    let graph = HnswGraph::build(
        &data,
        hsu_geometry::point::Metric::Euclidean,
        GraphConfig::default(),
        3,
    );
    let chunk = graph_to_chunk(&graph);
    let restored = graph_from_chunk(&chunk, "index/graph").unwrap();
    assert_eq!(graph_to_chunk(&restored), chunk, "graph re-encode drifted");
}

#[test]
fn kdtree_index_parity() {
    use hsu_kdtree::archive_io::{kdtree_from_chunk, kdtree_to_chunk};
    use hsu_kdtree::KdTree;
    let data = sample_points(400, 3, 5);
    let tree = KdTree::build_with(&data, hsu_geometry::point::Metric::Euclidean, 4, None);
    let chunk = kdtree_to_chunk(&tree);
    let restored = kdtree_from_chunk(&chunk, "index/kdtree").unwrap();
    assert_eq!(
        kdtree_to_chunk(&restored),
        chunk,
        "kdtree re-encode drifted"
    );
}

#[test]
fn bvh_index_parity() {
    use hsu_bvh::archive_io::{bvh2_from_chunk, bvh2_to_chunk};
    use hsu_bvh::{LbvhBuilder, PointPrimitive};
    use hsu_geometry::Vec3;
    let data = sample_points(200, 3, 9);
    let prims: Vec<PointPrimitive> = (0..data.len())
        .map(|i| {
            let p = data.point(i);
            PointPrimitive::new(i as u32, Vec3::new(p[0], p[1], p[2]), 0.3)
        })
        .collect();
    let bvh = LbvhBuilder::default().build(&prims);
    let chunk = bvh2_to_chunk(&bvh);
    let restored = bvh2_from_chunk(&chunk, "index/bvh2").unwrap();
    assert_eq!(bvh2_to_chunk(&restored), chunk, "bvh re-encode drifted");
}

#[test]
fn btree_index_parity() {
    use hsu_btree::archive_io::{btree_from_chunk, btree_to_chunk};
    use hsu_btree::BPlusTree;
    let pairs: Vec<(u32, u64)> = (0..900u32)
        .map(|i| (i.wrapping_mul(40503) & 0xffff, u64::from(i)))
        .collect();
    let tree = BPlusTree::bulk_build(pairs, 16);
    let chunk = btree_to_chunk(&tree);
    let restored = btree_from_chunk(&chunk, "index/btree").unwrap();
    assert_eq!(btree_to_chunk(&restored), chunk, "btree re-encode drifted");
    restored.validate().expect("restored tree validates");
}

/// File-level parity: writing the same dataset archive twice (different
/// paths) produces identical files, and a read-back → re-write is identical
/// too — the property the cache's content keys rely on.
#[test]
fn dataset_archive_file_parity() {
    use hsu_datasets::archive_io::{read_dataset_archive, write_dataset_archive};
    use hsu_datasets::{Dataset, DatasetId};
    let dir = std::env::temp_dir().join(format!("hsu-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ds = Dataset::generate_scaled(DatasetId::Sift10k, 7, Some(200));
    let key = "file-parity";
    let a = dir.join("a.hsar");
    let b = dir.join("b.hsar");
    write_dataset_archive(&a, key, &ds).unwrap();
    let restored = read_dataset_archive(&a, key, DatasetId::Sift10k).unwrap();
    write_dataset_archive(&b, key, &restored).unwrap();
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}
