//! Typed-corruption discipline: every fault class in `hsu_archive::faults`
//! must decode to its pinned [`ArchiveError`] variant — never a panic, never
//! an `Io`, and never silent wrong data. Mirrors the trace-level
//! `fault_injection.rs` suite in `crates/sim`: a catch-unwind decode helper,
//! a ≥256-seed sweep over every fault class, and byte-soup proptests
//! against the parser itself.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use hsu_archive::faults::{corrupt_archive_bytes, ArchiveFault, ARCHIVE_FAULTS};
use hsu_archive::{kind, ArchiveError, ArchiveWriter, ChunkEntry, FileArchive, SliceArchive};

/// A representative healthy archive: keyed, nested groups, payloads of
/// assorted sizes including an empty one.
fn sample_archive() -> Vec<u8> {
    let mut w = ArchiveWriter::new();
    w.set_key("corruption-sample");
    w.begin_group("traces");
    w.add_chunk("hsu", kind::TRACE, &[0xa5u8; 513]);
    w.add_chunk("base", kind::TRACE, &[0x5au8; 64]);
    w.end_group();
    w.begin_group("data");
    w.add_chunk("points", kind::POINTS, &[1u8; 240]);
    w.add_chunk("empty", kind::SCALAR, &[]);
    w.end_group();
    w.finish()
}

/// What decoding the corrupted image must yield: one of the fault class's
/// pinned typed errors. The mapping is documented (and unit-tested) in
/// `hsu_archive::faults`.
fn pinned_kinds(fault: ArchiveFault) -> &'static [&'static str] {
    match fault {
        ArchiveFault::Truncate => &[
            "truncated",
            "bad-magic",
            "malformed-index",
            "checksum-mismatch",
        ],
        ArchiveFault::ChecksumFlip => &["checksum-mismatch"],
        ArchiveFault::BogusChunkKind => &["bad-chunk-kind"],
        ArchiveFault::VersionSkew => &["version-skew"],
    }
}

/// Fully decodes an archive image the way a cache consumer would: parse,
/// verify the content key, then read every chunk under the kind the healthy
/// original recorded for that path. Returns the first typed error.
fn decode_all(bytes: &[u8], expected: &[ChunkEntry]) -> Result<(), ArchiveError> {
    let archive = SliceArchive::parse(bytes)?;
    archive.expect_key("corruption-sample")?;
    for entry in expected {
        archive.read(&entry.path, entry.kind)?;
    }
    Ok(())
}

/// Same consumer walk through the streaming reader.
fn decode_all_file(path: &std::path::Path, expected: &[ChunkEntry]) -> Result<(), ArchiveError> {
    let mut archive = FileArchive::open(path)?;
    archive.expect_key("corruption-sample")?;
    for entry in expected {
        archive.read(&entry.path, entry.kind)?;
    }
    Ok(())
}

/// The never-panic contract: decoding must return a typed error from the
/// fault's pinned set — a panic or an `Ok` are both test failures.
fn decode_must_fail_typed(
    bytes: &[u8],
    expected: &[ChunkEntry],
    fault: ArchiveFault,
    seed: u64,
) -> ArchiveError {
    let outcome = catch_unwind(AssertUnwindSafe(|| decode_all(bytes, expected)));
    let result = match outcome {
        Ok(result) => result,
        Err(_) => panic!("decoder panicked on {fault:?} seed {seed}"),
    };
    let err = match result {
        Err(err) => err,
        Ok(()) => panic!("corrupted archive decoded successfully: {fault:?} seed {seed}"),
    };
    assert!(
        pinned_kinds(fault).contains(&err.kind()),
        "{fault:?} seed {seed}: got unpinned error kind {:?} ({err})",
        err.kind()
    );
    err
}

fn healthy_entries(bytes: &[u8]) -> Vec<ChunkEntry> {
    SliceArchive::parse(bytes)
        .expect("sample archive parses")
        .entries()
        .to_vec()
}

/// The headline sweep: every fault class, ≥256 seeds each, always the
/// pinned typed error. Mirrors
/// `fault_injection::every_fault_class_is_rejected_across_a_seed_sweep`.
#[test]
fn every_fault_class_is_typed_across_a_seed_sweep() {
    let bytes = sample_archive();
    let entries = healthy_entries(&bytes);
    for fault in ARCHIVE_FAULTS {
        for seed in 0..256u64 {
            let bad = corrupt_archive_bytes(&bytes, fault, seed);
            decode_must_fail_typed(&bad, &entries, fault, seed);
        }
    }
}

/// The streaming reader honors the same contract: corrupted files yield the
/// same pinned error kinds, never a panic. (Sampled more sparsely — each
/// case is a real file open.)
#[test]
fn file_reader_types_every_fault_class() {
    let bytes = sample_archive();
    let entries = healthy_entries(&bytes);
    let dir = std::env::temp_dir().join(format!("hsu-corruption-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for fault in ARCHIVE_FAULTS {
        for seed in 0..32u64 {
            let bad = corrupt_archive_bytes(&bytes, fault, seed);
            let path = dir.join("corrupt.hsar");
            std::fs::write(&path, &bad).expect("write corrupted image");
            let outcome = catch_unwind(AssertUnwindSafe(|| decode_all_file(&path, &entries)));
            let result = outcome
                .unwrap_or_else(|_| panic!("file decoder panicked on {fault:?} seed {seed}"));
            let err = match result {
                Err(err) => err,
                Ok(()) => panic!("corrupted file decoded successfully: {fault:?} seed {seed}"),
            };
            assert!(
                pinned_kinds(fault).contains(&err.kind()),
                "{fault:?} seed {seed}: file reader gave {:?} ({err})",
                err.kind()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted archive must never round-trip back to the original data —
/// the "silent wrong data" half of the contract, checked explicitly for the
/// one fault (BogusChunkKind) whose image still parses.
#[test]
fn bogus_kind_never_serves_data_under_the_expected_kind() {
    let bytes = sample_archive();
    let entries = healthy_entries(&bytes);
    for seed in 0..256u64 {
        let bad = corrupt_archive_bytes(&bytes, ArchiveFault::BogusChunkKind, seed);
        let archive = SliceArchive::parse(&bad).expect("doctored index parses");
        let mut rejected = 0;
        for entry in &entries {
            match archive.read(&entry.path, entry.kind) {
                Ok(payload) => {
                    // Untouched chunks must still serve the exact original.
                    let orig = SliceArchive::parse(&bytes).unwrap();
                    assert_eq!(payload, orig.read(&entry.path, entry.kind).unwrap());
                }
                Err(ArchiveError::BadChunkKind { found, .. }) => {
                    assert_eq!(found, hsu_archive::faults::BOGUS_KIND);
                    rejected += 1;
                }
                Err(other) => panic!("seed {seed}: unexpected error {other}"),
            }
        }
        assert_eq!(
            rejected, 1,
            "seed {seed}: exactly one chunk must be rejected"
        );
    }
}

/// A stale cache file — right name, wrong generator inputs — is a typed
/// `KeyMismatch`, which cache layers treat as a miss rather than wrong data.
#[test]
fn key_mismatch_is_typed_not_silent() {
    let bytes = sample_archive();
    let archive = SliceArchive::parse(&bytes).unwrap();
    let err = archive
        .expect_key("different-generator-inputs")
        .unwrap_err();
    assert_eq!(err.kind(), "key-mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup never panics the parser — it returns a typed
    /// error (or, vanishingly unlikely, parses).
    #[test]
    fn arbitrary_byte_soup_never_panics_the_parser(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            SliceArchive::parse(&bytes).map(|a| a.entries().len())
        }));
        prop_assert!(outcome.is_ok(), "parser panicked on arbitrary bytes");
    }

    /// Random mutations of a healthy archive (one byte rewritten anywhere)
    /// never panic and never corrupt chunk payloads silently: every chunk
    /// read either errors typed or returns the original bytes. Mutating a
    /// byte inside a payload IS detected by the footer checksum; mutations
    /// in dead space (name bytes, reserved header bytes) may leave reads
    /// intact, which is fine — the contract is "typed error or right data".
    #[test]
    fn single_byte_mutations_are_typed_or_harmless(
        pos_seed in any::<u64>(),
        value in any::<u8>(),
    ) {
        let bytes = sample_archive();
        let entries = healthy_entries(&bytes);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[pos] = value;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let archive = match SliceArchive::parse(&bad) {
                Ok(a) => a,
                Err(_) => return Ok::<(), ()>(()), // typed reject at parse: fine
            };
            let orig = SliceArchive::parse(&bytes).unwrap();
            for entry in &entries {
                if let Ok(payload) = archive.read(&entry.path, entry.kind) {
                    // Served data must be byte-identical to the original.
                    if payload != orig.read(&entry.path, entry.kind).unwrap() {
                        return Err(());
                    }
                }
            }
            Ok(())
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(())) => prop_assert!(false, "silent wrong data at byte {pos}"),
            Err(_) => prop_assert!(false, "panic on single-byte mutation at {pos}"),
        }
    }
}
