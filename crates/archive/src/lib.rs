//! `.hsar` — the HSU chunked archive format.
//!
//! A compact write-once container for packed warp traces, generated
//! datasets, and built search indexes: a magic/version header, a group tree
//! of typed data chunks — each payload immediately followed by a length +
//! checksum footer — and an index table at the tail that locates every
//! chunk, so readers seek straight to the data they need instead of
//! scanning the file.
//!
//! ```text
//! +--------+-----------------+--------+-...-+-------+---------+
//! | header | chunk 0 payload | footer | ... | index | trailer |
//! +--------+-----------------+--------+-...-+-------+---------+
//! header  = "HSAR" magic, version u8, 3 reserved bytes         (8 B)
//! footer  = payload length u64, FNV-1a-64 checksum u64        (16 B)
//! index   = group tree + per-chunk {group, kind, name,
//!           offset, length, checksum} records
//! trailer = index offset/length/checksum, "RASH" end magic    (28 B)
//! ```
//!
//! Everything is little-endian. Files are written strictly forward (no
//! seeking), so producers can stream; readers start from the trailer.
//! [`SliceArchive`] hands out zero-copy payload borrows from an in-memory
//! or memory-mapped image; [`FileArchive`] streams chunks through seeks
//! without ever loading the whole file.
//!
//! Two disciplines, both enforced by this crate's test suite:
//!
//! * **Parity** (`tests/parity.rs`): encode → decode → re-encode is
//!   byte-identical for every payload codec in the workspace. The encoding
//!   is fully deterministic — no timestamps, no padding, insertion order
//!   preserved — so equal content means equal bytes.
//! * **Typed corruption** (`tests/corruption.rs`): every fault class in
//!   [`faults`] decodes to its pinned [`ArchiveError`] variant — never a
//!   panic, never silent wrong data.
//!
//! Archives may carry a content key (`meta/key` chunk, written with
//! [`ArchiveWriter::set_key`]) naming the exact generator inputs that
//! produced them; `expect_key` turns a stale cache file into a typed
//! [`ArchiveError::KeyMismatch`] miss instead of wrong data.

#![warn(missing_docs)]

mod error;
pub mod faults;
mod format;
pub mod payload;
mod reader;
mod writer;

pub use error::ArchiveError;
pub use format::{
    fnv1a64, kind, FOOTER_LEN, HEADER_LEN, MAGIC, MAX_NAME_LEN, TRAILER_LEN, VERSION,
};
pub use reader::{ChunkEntry, FileArchive, SliceArchive};
pub use writer::{ArchiveWriter, KEY_PATH, META_GROUP};

/// Hashes a content-key string into the compact hex fragment cache layers
/// embed in archive file names (`{stem}-{hash:016x}.hsar`).
pub fn key_hash(key: &str) -> u64 {
    fnv1a64(key.as_bytes())
}
