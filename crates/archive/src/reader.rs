//! The two archive readers.
//!
//! [`SliceArchive`] parses an in-memory (or memory-mapped) byte slice and
//! hands out zero-copy payload borrows. [`FileArchive`] opens a file, reads
//! only the header, trailer, and index, and then seeks per chunk — a
//! streaming reader that never loads the whole archive.
//!
//! Both verify the same things in the same order: header magic and version,
//! trailer magic, index span, index checksum, index structure, and — per
//! chunk read — the footer length, the footer checksum, and the payload
//! checksum against the index record.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::error::ArchiveError;
use crate::format::{
    check_header, decode_index, fnv1a64, kind, parse_trailer, ChunkRec, GroupRec, FOOTER_LEN,
    HEADER_LEN, TRAILER_LEN,
};
use crate::writer::KEY_PATH;

/// One chunk's identity and location, resolved from the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Full `group/.../name` path.
    pub path: String,
    /// Kind tag from [`crate::kind`].
    pub kind: u32,
    /// Payload offset from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

/// Builds full chunk paths and validates every chunk span against the data
/// region `[HEADER_LEN, index_offset)`.
fn build_entries(
    groups: &[GroupRec],
    chunks: &[ChunkRec],
    index_offset: u64,
) -> Result<Vec<ChunkEntry>, ArchiveError> {
    let mut group_paths = Vec::with_capacity(groups.len());
    for (i, g) in groups.iter().enumerate() {
        let path = if i == 0 {
            String::new()
        } else {
            let parent: &String = &group_paths[g.parent as usize];
            if parent.is_empty() {
                g.name.clone()
            } else {
                format!("{parent}/{}", g.name)
            }
        };
        group_paths.push(path);
    }
    let mut entries = Vec::with_capacity(chunks.len());
    for c in chunks {
        let gp = &group_paths[c.group as usize];
        let path = if gp.is_empty() {
            c.name.clone()
        } else {
            format!("{gp}/{}", c.name)
        };
        let end = c
            .offset
            .checked_add(c.len)
            .and_then(|e| e.checked_add(FOOTER_LEN as u64));
        match end {
            Some(end) if c.offset >= HEADER_LEN as u64 && end <= index_offset => {}
            _ => {
                return Err(ArchiveError::MalformedIndex {
                    detail: format!(
                        "chunk '{path}' spans {}+{} outside the data region",
                        c.offset, c.len
                    ),
                });
            }
        }
        entries.push(ChunkEntry {
            path,
            kind: c.kind,
            offset: c.offset,
            len: c.len,
            checksum: c.checksum,
        });
    }
    Ok(entries)
}

/// Verifies one chunk's footer and payload against its index record.
fn verify_chunk(entry: &ChunkEntry, payload: &[u8], footer: &[u8]) -> Result<(), ArchiveError> {
    let flen = u64::from_le_bytes(footer[0..8].try_into().expect("fixed slice"));
    if flen != entry.len {
        return Err(ArchiveError::Truncated {
            detail: format!(
                "chunk '{}' footer records {flen} bytes, index records {}",
                entry.path, entry.len
            ),
        });
    }
    let fchk = u64::from_le_bytes(footer[8..16].try_into().expect("fixed slice"));
    if fchk != entry.checksum {
        return Err(ArchiveError::ChecksumMismatch {
            chunk: entry.path.clone(),
            stored: fchk,
            computed: entry.checksum,
        });
    }
    let computed = fnv1a64(payload);
    if computed != entry.checksum {
        return Err(ArchiveError::ChecksumMismatch {
            chunk: entry.path.clone(),
            stored: entry.checksum,
            computed,
        });
    }
    Ok(())
}

fn find_entry<'e>(entries: &'e [ChunkEntry], path: &str) -> Result<&'e ChunkEntry, ArchiveError> {
    entries
        .iter()
        .find(|e| e.path == path)
        .ok_or_else(|| ArchiveError::MissingChunk { path: path.into() })
}

fn check_kind(entry: &ChunkEntry, expected: u32) -> Result<(), ArchiveError> {
    if entry.kind != expected {
        return Err(ArchiveError::BadChunkKind {
            chunk: entry.path.clone(),
            found: entry.kind,
            expected,
        });
    }
    Ok(())
}

fn check_key(entry_key: &[u8], expected: &str) -> Result<(), ArchiveError> {
    let found = String::from_utf8_lossy(entry_key);
    if found != expected {
        return Err(ArchiveError::KeyMismatch {
            expected: expected.to_string(),
            found: found.into_owned(),
        });
    }
    Ok(())
}

/// Zero-copy reader over a complete archive image in memory. Works equally
/// over a heap buffer or a memory-mapped region — the format never requires
/// mutation or ownership of the bytes.
#[derive(Debug)]
pub struct SliceArchive<'a> {
    bytes: &'a [u8],
    entries: Vec<ChunkEntry>,
}

impl<'a> SliceArchive<'a> {
    /// Parses and validates the header, trailer, and index of `bytes`.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ArchiveError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(ArchiveError::Truncated {
                detail: format!(
                    "{} bytes cannot hold the {HEADER_LEN}-byte header and {TRAILER_LEN}-byte trailer",
                    bytes.len()
                ),
            });
        }
        check_header(bytes)?;
        let trailer_bytes: &[u8; TRAILER_LEN] = bytes[bytes.len() - TRAILER_LEN..]
            .try_into()
            .expect("fixed slice");
        let trailer = parse_trailer(trailer_bytes, bytes.len() as u64)?;
        let index_bytes = &bytes
            [trailer.index_offset as usize..(trailer.index_offset + trailer.index_len) as usize];
        let computed = fnv1a64(index_bytes);
        if computed != trailer.index_checksum {
            return Err(ArchiveError::ChecksumMismatch {
                chunk: "<index>".into(),
                stored: trailer.index_checksum,
                computed,
            });
        }
        let (groups, chunks) = decode_index(index_bytes)?;
        let entries = build_entries(&groups, &chunks, trailer.index_offset)?;
        Ok(SliceArchive { bytes, entries })
    }

    /// Every chunk in index order.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Looks a chunk up by its `group/.../name` path.
    pub fn find(&self, path: &str) -> Option<&ChunkEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Returns a chunk's payload, verified, zero-copy.
    pub fn chunk_bytes(&self, entry: &ChunkEntry) -> Result<&'a [u8], ArchiveError> {
        let start = entry.offset as usize;
        let payload = &self.bytes[start..start + entry.len as usize];
        let footer =
            &self.bytes[start + entry.len as usize..start + entry.len as usize + FOOTER_LEN];
        verify_chunk(entry, payload, footer)?;
        Ok(payload)
    }

    /// Path + kind-checked payload read: the usual consumer entry point.
    pub fn read(&self, path: &str, expected_kind: u32) -> Result<&'a [u8], ArchiveError> {
        let entry = find_entry(&self.entries, path)?;
        check_kind(entry, expected_kind)?;
        self.chunk_bytes(entry)
    }

    /// Verifies the archive's `meta/key` content key; a mismatch is the
    /// typed cache-miss signal [`ArchiveError::KeyMismatch`].
    pub fn expect_key(&self, expected: &str) -> Result<(), ArchiveError> {
        check_key(self.read(KEY_PATH, kind::META)?, expected)
    }
}

/// Streaming reader: opens a file, loads only header + trailer + index, and
/// seeks to chunks on demand. Memory use is bounded by the largest single
/// chunk, not the archive.
#[derive(Debug)]
pub struct FileArchive {
    file: File,
    context: String,
    entries: Vec<ChunkEntry>,
}

impl FileArchive {
    /// Opens and validates `path` without reading any chunk payloads.
    pub fn open(path: &Path) -> Result<Self, ArchiveError> {
        let context = path.display().to_string();
        let mut file = File::open(path).map_err(|e| ArchiveError::io(&context, e))?;
        let file_len = file
            .metadata()
            .map_err(|e| ArchiveError::io(&context, e))?
            .len();
        if file_len < (HEADER_LEN + TRAILER_LEN) as u64 {
            return Err(ArchiveError::Truncated {
                detail: format!(
                    "{file_len} bytes cannot hold the {HEADER_LEN}-byte header and {TRAILER_LEN}-byte trailer"
                ),
            });
        }
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)
            .map_err(|e| ArchiveError::io(&context, e))?;
        check_header(&header)?;
        let mut trailer_bytes = [0u8; TRAILER_LEN];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))
            .map_err(|e| ArchiveError::io(&context, e))?;
        file.read_exact(&mut trailer_bytes)
            .map_err(|e| ArchiveError::io(&context, e))?;
        let trailer = parse_trailer(&trailer_bytes, file_len)?;
        let mut index_bytes = vec![0u8; trailer.index_len as usize];
        file.seek(SeekFrom::Start(trailer.index_offset))
            .map_err(|e| ArchiveError::io(&context, e))?;
        file.read_exact(&mut index_bytes)
            .map_err(|e| ArchiveError::io(&context, e))?;
        let computed = fnv1a64(&index_bytes);
        if computed != trailer.index_checksum {
            return Err(ArchiveError::ChecksumMismatch {
                chunk: "<index>".into(),
                stored: trailer.index_checksum,
                computed,
            });
        }
        let (groups, chunks) = decode_index(&index_bytes)?;
        let entries = build_entries(&groups, &chunks, trailer.index_offset)?;
        Ok(FileArchive {
            file,
            context,
            entries,
        })
    }

    /// Every chunk in index order.
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Looks a chunk up by its `group/.../name` path.
    pub fn find(&self, path: &str) -> Option<&ChunkEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Seeks to one chunk and returns its verified payload.
    pub fn read(&mut self, path: &str, expected_kind: u32) -> Result<Vec<u8>, ArchiveError> {
        let entry = find_entry(&self.entries, path)?.clone();
        check_kind(&entry, expected_kind)?;
        let mut buf = vec![0u8; entry.len as usize + FOOTER_LEN];
        self.file
            .seek(SeekFrom::Start(entry.offset))
            .map_err(|e| ArchiveError::io(&self.context, e))?;
        self.file
            .read_exact(&mut buf)
            .map_err(|e| ArchiveError::io(&self.context, e))?;
        let (payload, footer) = buf.split_at(entry.len as usize);
        verify_chunk(&entry, payload, footer)?;
        buf.truncate(entry.len as usize);
        Ok(buf)
    }

    /// Verifies the archive's `meta/key` content key; a mismatch is the
    /// typed cache-miss signal [`ArchiveError::KeyMismatch`].
    pub fn expect_key(&mut self, expected: &str) -> Result<(), ArchiveError> {
        check_key(&self.read(KEY_PATH, kind::META)?, expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ArchiveWriter;

    fn sample() -> Vec<u8> {
        let mut w = ArchiveWriter::new();
        w.set_key("sample-key");
        w.begin_group("traces");
        w.add_chunk("hsu", kind::TRACE, b"trace-bytes-hsu");
        w.add_chunk("base", kind::TRACE, b"trace-bytes-base");
        w.end_group();
        w.add_chunk("radius", kind::SCALAR, &1.5f32.to_le_bytes());
        w.finish()
    }

    #[test]
    fn slice_reader_round_trips_paths_and_payloads() {
        let bytes = sample();
        let a = SliceArchive::parse(&bytes).expect("valid archive");
        assert_eq!(a.entries().len(), 4);
        assert_eq!(
            a.read("traces/hsu", kind::TRACE).unwrap(),
            b"trace-bytes-hsu"
        );
        assert_eq!(
            a.read("traces/base", kind::TRACE).unwrap(),
            b"trace-bytes-base"
        );
        assert_eq!(
            a.read("radius", kind::SCALAR).unwrap(),
            &1.5f32.to_le_bytes()
        );
        a.expect_key("sample-key").expect("key matches");
    }

    #[test]
    fn wrong_kind_and_missing_path_are_typed() {
        let bytes = sample();
        let a = SliceArchive::parse(&bytes).unwrap();
        let err = a.read("traces/hsu", kind::POINTS).unwrap_err();
        assert_eq!(err.kind(), "bad-chunk-kind");
        let err = a.read("traces/nope", kind::TRACE).unwrap_err();
        assert_eq!(err.kind(), "missing-chunk");
    }

    #[test]
    fn key_mismatch_is_typed() {
        let bytes = sample();
        let a = SliceArchive::parse(&bytes).unwrap();
        let err = a.expect_key("other-key").unwrap_err();
        assert_eq!(err.kind(), "key-mismatch");
    }

    #[test]
    fn file_reader_matches_slice_reader() {
        let bytes = sample();
        let dir = std::env::temp_dir().join(format!("hsar-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.hsar");
        std::fs::write(&path, &bytes).unwrap();
        let mut f = FileArchive::open(&path).expect("open");
        f.expect_key("sample-key").unwrap();
        let slice = SliceArchive::parse(&bytes).unwrap();
        for entry in slice.entries() {
            let a = slice.chunk_bytes(entry).unwrap().to_vec();
            let b = f.read(&entry.path, entry.kind).unwrap();
            assert_eq!(a, b, "{}", entry.path);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_not_corruption() {
        let err = FileArchive::open(Path::new("/nonexistent/definitely-not-here.hsar"))
            .expect_err("must fail");
        assert_eq!(err.kind(), "io");
    }
}
