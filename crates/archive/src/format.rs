//! On-disk layout constants, the FNV-1a checksum, the chunk-kind registry,
//! and the index encode/decode shared by the writer, the readers, and the
//! fault injector.
//!
//! Everything in a `.hsar` file is little-endian:
//!
//! ```text
//! header  : "HSAR" magic (4) | version u8 | reserved [0u8; 3]        =  8 B
//! chunk i : payload bytes | footer { len u64 | fnv1a64(payload) }    = len + 16 B
//! index   : group records | chunk records (see encode_index)
//! trailer : index_offset u64 | index_len u64 | fnv1a64(index) | "RASH" = 28 B
//! ```
//!
//! The file is written strictly forward — no seeking — and read from the
//! tail: the trailer locates the index, the index locates every chunk.

use crate::error::ArchiveError;
use crate::payload::{put_u16, put_u32, put_u64, Cursor};

/// Leading file magic.
pub const MAGIC: [u8; 4] = *b"HSAR";
/// Trailing file magic (the header magic reversed), confirming the trailer
/// is really a trailer and the file was not cut short.
pub const TRAILER_MAGIC: [u8; 4] = *b"RASH";
/// Format version this library writes and reads.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 8;
/// Fixed per-chunk footer size in bytes (length + checksum).
pub const FOOTER_LEN: usize = 16;
/// Fixed trailer size in bytes.
pub const TRAILER_LEN: usize = 28;

/// Longest permitted group or chunk name (same cap as the trace codec).
pub const MAX_NAME_LEN: usize = 4096;
/// Most groups an index may declare.
pub const MAX_GROUPS: usize = 1 << 16;
/// Most chunks an index may declare.
pub const MAX_CHUNKS: usize = 1 << 20;

/// `parent` value marking the root group.
pub(crate) const ROOT_PARENT: u32 = u32::MAX;

/// FNV-1a 64-bit hash: the archive checksum and the cache-key hash.
///
/// Chosen because it is dependency-free, fast on short inputs, and byte-order
/// independent; the format stores it little-endian like every other integer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The chunk-kind registry: a `u32` tag stored per chunk in the index so a
/// reader can reject a payload wired to the wrong decoder
/// ([`ArchiveError::BadChunkKind`]) before parsing a byte of it.
pub mod kind {
    /// Archive metadata (the content key, format notes).
    pub const META: u32 = 0x4d45_5441; // "META"
    /// A packed warp trace in the `HSUT` stream format.
    pub const TRACE: u32 = 0x5452_4143; // "TRAC"
    /// A flat `f32` point set (dim × count).
    pub const POINTS: u32 = 0x504e_5453; // "PNTS"
    /// Sorted `(u32, u64)` key/value pairs.
    pub const KEYS: u32 = 0x4b45_5953; // "KEYS"
    /// An HNSW graph (layers, levels, entry point, build config).
    pub const GRAPH: u32 = 0x4752_5048; // "GRPH"
    /// A k-d tree (nodes, permutation, metric, build params).
    pub const KDTREE: u32 = 0x4b44_5452; // "KDTR"
    /// A binary BVH (AABB nodes + primitive permutation).
    pub const BVH2: u32 = 0x4256_4832; // "BVH2"
    /// A B+-tree (nodes, root, branch factor).
    pub const BTREE: u32 = 0x4254_5245; // "BTRE"
    /// A single scalar value (e.g. a search radius).
    pub const SCALAR: u32 = 0x5343_4c52; // "SCLR"

    /// Every registered kind, for corruption tests picking a bogus tag.
    pub const ALL: [u32; 9] = [
        META, TRACE, POINTS, KEYS, GRAPH, KDTREE, BVH2, BTREE, SCALAR,
    ];
}

/// One group record: a named node in the group tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GroupRec {
    /// Index of the parent group, or [`ROOT_PARENT`] for the root.
    pub parent: u32,
    /// Group name (empty for the root).
    pub name: String,
}

/// One chunk record: where a typed payload lives and what guards it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChunkRec {
    /// Index of the owning group.
    pub group: u32,
    /// Kind tag from [`kind`].
    pub kind: u32,
    /// Chunk name within its group.
    pub name: String,
    /// Byte offset of the payload from the start of the file.
    pub offset: u64,
    /// Payload length in bytes (footer excluded).
    pub len: u64,
    /// FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

fn put_name(buf: &mut Vec<u8>, name: &str) {
    debug_assert!(name.len() <= MAX_NAME_LEN);
    put_u16(buf, name.len() as u16);
    buf.extend_from_slice(name.as_bytes());
}

/// Serializes the index table. Shared between [`crate::ArchiveWriter`] and
/// the fault injector (which must re-encode a doctored index so the trailer
/// checksum stays consistent and the *intended* fault is the one a reader
/// trips on).
pub(crate) fn encode_index(groups: &[GroupRec], chunks: &[ChunkRec]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, groups.len() as u32);
    for g in groups {
        put_u32(&mut buf, g.parent);
        put_name(&mut buf, &g.name);
    }
    put_u32(&mut buf, chunks.len() as u32);
    for c in chunks {
        put_u32(&mut buf, c.group);
        put_u32(&mut buf, c.kind);
        put_name(&mut buf, &c.name);
        put_u64(&mut buf, c.offset);
        put_u64(&mut buf, c.len);
        put_u64(&mut buf, c.checksum);
    }
    buf
}

fn index_name(c: &mut Cursor<'_>, what: &str) -> Result<String, ArchiveError> {
    let len = usize::from(c.u16()?);
    if len > MAX_NAME_LEN {
        return Err(ArchiveError::MalformedIndex {
            detail: format!("{what} name of {len} bytes exceeds the {MAX_NAME_LEN} cap"),
        });
    }
    let bytes = c.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| ArchiveError::MalformedIndex {
        detail: format!("{what} name is not UTF-8"),
    })
}

/// Parses and structurally validates an index table (the inverse of
/// [`encode_index`]). Offsets are validated against the data region by the
/// caller, which knows where the index starts.
pub(crate) fn decode_index(bytes: &[u8]) -> Result<(Vec<GroupRec>, Vec<ChunkRec>), ArchiveError> {
    let mut c = Cursor::new(bytes, "<index>");
    let group_count = c.u32()? as usize;
    if group_count == 0 || group_count > MAX_GROUPS {
        return Err(ArchiveError::MalformedIndex {
            detail: format!("group count {group_count} outside 1..={MAX_GROUPS}"),
        });
    }
    let mut groups = Vec::with_capacity(group_count.min(1024));
    for i in 0..group_count {
        let parent = c.u32()?;
        let name = index_name(&mut c, "group")?;
        if i == 0 {
            if parent != ROOT_PARENT || !name.is_empty() {
                return Err(ArchiveError::MalformedIndex {
                    detail: "group 0 must be the unnamed root".into(),
                });
            }
        } else if parent as usize >= i {
            // Parents must precede children: bans cycles and forward refs.
            return Err(ArchiveError::MalformedIndex {
                detail: format!("group {i} references parent {parent} at or after itself"),
            });
        }
        groups.push(GroupRec { parent, name });
    }
    let chunk_count = c.u32()? as usize;
    if chunk_count > MAX_CHUNKS {
        return Err(ArchiveError::MalformedIndex {
            detail: format!("chunk count {chunk_count} exceeds the {MAX_CHUNKS} cap"),
        });
    }
    let mut chunks = Vec::with_capacity(chunk_count.min(1024));
    for _ in 0..chunk_count {
        let group = c.u32()?;
        if group as usize >= groups.len() {
            return Err(ArchiveError::MalformedIndex {
                detail: format!("chunk references group {group} of {}", groups.len()),
            });
        }
        let kind = c.u32()?;
        let name = index_name(&mut c, "chunk")?;
        let offset = c.u64()?;
        let len = c.u64()?;
        let checksum = c.u64()?;
        chunks.push(ChunkRec {
            group,
            kind,
            name,
            offset,
            len,
            checksum,
        });
    }
    c.finish()?;
    Ok((groups, chunks))
}

/// Serializes the 28-byte trailer.
pub(crate) fn encode_trailer(
    index_offset: u64,
    index_len: u64,
    index_checksum: u64,
) -> [u8; TRAILER_LEN] {
    let mut t = [0u8; TRAILER_LEN];
    t[0..8].copy_from_slice(&index_offset.to_le_bytes());
    t[8..16].copy_from_slice(&index_len.to_le_bytes());
    t[16..24].copy_from_slice(&index_checksum.to_le_bytes());
    t[24..28].copy_from_slice(&TRAILER_MAGIC);
    t
}

/// Parsed trailer fields.
pub(crate) struct Trailer {
    pub index_offset: u64,
    pub index_len: u64,
    pub index_checksum: u64,
}

/// Validates the fixed header (magic + version). `bytes` must hold at least
/// [`HEADER_LEN`] bytes.
pub(crate) fn check_header(bytes: &[u8]) -> Result<(), ArchiveError> {
    let found: [u8; 4] = bytes[0..4].try_into().expect("caller checked length");
    if found != MAGIC {
        return Err(ArchiveError::BadMagic { found });
    }
    if bytes[4] != VERSION {
        return Err(ArchiveError::VersionSkew {
            found: bytes[4],
            expected: VERSION,
        });
    }
    Ok(())
}

/// Validates and parses the trailer given the total file length. The index
/// must sit flush between the data region and the trailer — the write-once
/// format never leaves a gap, so any slack is corruption.
pub(crate) fn parse_trailer(
    bytes: &[u8; TRAILER_LEN],
    file_len: u64,
) -> Result<Trailer, ArchiveError> {
    if bytes[24..28] != TRAILER_MAGIC {
        return Err(ArchiveError::Truncated {
            detail: "trailer magic missing from the file tail".into(),
        });
    }
    let index_offset = u64::from_le_bytes(bytes[0..8].try_into().expect("fixed slice"));
    let index_len = u64::from_le_bytes(bytes[8..16].try_into().expect("fixed slice"));
    let index_checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("fixed slice"));
    let data_end = file_len - TRAILER_LEN as u64;
    if index_offset < HEADER_LEN as u64
        || index_offset > data_end
        || index_offset.checked_add(index_len) != Some(data_end)
    {
        return Err(ArchiveError::MalformedIndex {
            detail: format!(
                "index span {index_offset}+{index_len} does not end flush at the trailer ({data_end})"
            ),
        });
    }
    Ok(Trailer {
        index_offset,
        index_len,
        index_checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn index_round_trips() {
        let groups = vec![
            GroupRec {
                parent: ROOT_PARENT,
                name: String::new(),
            },
            GroupRec {
                parent: 0,
                name: "traces".into(),
            },
        ];
        let chunks = vec![ChunkRec {
            group: 1,
            kind: kind::TRACE,
            name: "hsu".into(),
            offset: 8,
            len: 100,
            checksum: 42,
        }];
        let bytes = encode_index(&groups, &chunks);
        let (g2, c2) = decode_index(&bytes).expect("round trip");
        assert_eq!(groups, g2);
        assert_eq!(chunks, c2);
    }

    #[test]
    fn forward_group_references_are_rejected() {
        let groups = vec![
            GroupRec {
                parent: ROOT_PARENT,
                name: String::new(),
            },
            GroupRec {
                parent: 2,
                name: "broken".into(),
            },
        ];
        let bytes = encode_index(&groups, &[]);
        let err = decode_index(&bytes).expect_err("forward parent must fail");
        assert_eq!(err.kind(), "malformed-index");
    }

    #[test]
    fn registry_kinds_are_distinct() {
        let mut all = kind::ALL.to_vec();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), kind::ALL.len());
    }
}
