//! The typed decode-error taxonomy for `.hsar` archives.
//!
//! Every way an archive can fail to open or a chunk can fail to read maps to
//! exactly one [`ArchiveError`] variant — the corruption test suite pins each
//! fault class in [`crate::faults`] to its variant, and consumers (the
//! simulator, the bench cache) branch on [`ArchiveError::kind`] to decide
//! between "rebuild the cache entry" and "report an I/O problem".

use std::fmt;

/// A typed `.hsar` decode or I/O failure. Never panics, never silent data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// The first four bytes are not the `HSAR` magic — not an archive.
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The header's format version is not one this reader understands.
    VersionSkew {
        /// Version byte in the file.
        found: u8,
        /// Version this library writes and reads.
        expected: u8,
    },
    /// The file ends before a structure it promised — header, chunk
    /// payload, footer, index, or trailer.
    Truncated {
        /// What was being read when the bytes ran out.
        detail: String,
    },
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// Path of the chunk (or `"<index>"` for the index table).
        chunk: String,
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum computed over the bytes actually present.
        computed: u64,
    },
    /// A chunk exists but carries a different type tag than the caller
    /// asked for.
    BadChunkKind {
        /// Path of the offending chunk.
        chunk: String,
        /// Kind tag found in the index.
        found: u32,
        /// Kind tag the caller expected.
        expected: u32,
    },
    /// The index table failed structural validation (counts out of range,
    /// names too long, offsets outside the data region, dangling group
    /// references).
    MalformedIndex {
        /// What the validator tripped on.
        detail: String,
    },
    /// A lookup by path found no chunk.
    MissingChunk {
        /// The `group/name` path that was requested.
        path: String,
    },
    /// The archive's `meta/key` chunk does not match the content key the
    /// reader expected — same file name, different generator inputs. Cache
    /// layers treat this as a miss, not an error.
    KeyMismatch {
        /// Key the reader required.
        expected: String,
        /// Key stored in the archive.
        found: String,
    },
    /// A chunk's payload decoded structurally (checksums fine) but its
    /// contents violate the codec's schema.
    Payload {
        /// Path of the chunk being decoded.
        chunk: String,
        /// What the codec rejected.
        detail: String,
    },
    /// An operating-system I/O failure, distinct from data corruption.
    Io {
        /// What was being done (usually the file path).
        context: String,
        /// The OS error text.
        detail: String,
    },
}

impl ArchiveError {
    /// Stable machine-readable tag for each variant, mirroring
    /// `SimError::kind`.
    pub fn kind(&self) -> &'static str {
        match self {
            ArchiveError::BadMagic { .. } => "bad-magic",
            ArchiveError::VersionSkew { .. } => "version-skew",
            ArchiveError::Truncated { .. } => "truncated",
            ArchiveError::ChecksumMismatch { .. } => "checksum-mismatch",
            ArchiveError::BadChunkKind { .. } => "bad-chunk-kind",
            ArchiveError::MalformedIndex { .. } => "malformed-index",
            ArchiveError::MissingChunk { .. } => "missing-chunk",
            ArchiveError::KeyMismatch { .. } => "key-mismatch",
            ArchiveError::Payload { .. } => "payload",
            ArchiveError::Io { .. } => "io",
        }
    }

    /// Wraps an OS error with the operation it interrupted.
    pub fn io(context: impl Into<String>, err: std::io::Error) -> Self {
        ArchiveError::Io {
            context: context.into(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::BadMagic { found } => {
                write!(f, "bad archive magic {found:02x?} (expected \"HSAR\")")
            }
            ArchiveError::VersionSkew { found, expected } => {
                write!(
                    f,
                    "archive format version {found} (this reader understands {expected})"
                )
            }
            ArchiveError::Truncated { detail } => write!(f, "archive truncated: {detail}"),
            ArchiveError::ChecksumMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in '{chunk}': stored {stored:#018x}, computed {computed:#018x}"
            ),
            ArchiveError::BadChunkKind {
                chunk,
                found,
                expected,
            } => write!(
                f,
                "chunk '{chunk}' has kind {found:#010x}, expected {expected:#010x}"
            ),
            ArchiveError::MalformedIndex { detail } => {
                write!(f, "malformed archive index: {detail}")
            }
            ArchiveError::MissingChunk { path } => write!(f, "no chunk at '{path}'"),
            ArchiveError::KeyMismatch { expected, found } => write!(
                f,
                "archive key mismatch: expected '{expected}', found '{found}'"
            ),
            ArchiveError::Payload { chunk, detail } => {
                write!(f, "malformed payload in '{chunk}': {detail}")
            }
            ArchiveError::Io { context, detail } => write!(f, "{context}: {detail}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let variants = [
            ArchiveError::BadMagic { found: *b"NOPE" },
            ArchiveError::VersionSkew {
                found: 9,
                expected: 1,
            },
            ArchiveError::Truncated { detail: "x".into() },
            ArchiveError::ChecksumMismatch {
                chunk: "a/b".into(),
                stored: 1,
                computed: 2,
            },
            ArchiveError::BadChunkKind {
                chunk: "a/b".into(),
                found: 3,
                expected: 4,
            },
            ArchiveError::MalformedIndex { detail: "x".into() },
            ArchiveError::MissingChunk { path: "a/b".into() },
            ArchiveError::KeyMismatch {
                expected: "k1".into(),
                found: "k2".into(),
            },
            ArchiveError::Payload {
                chunk: "a/b".into(),
                detail: "x".into(),
            },
            ArchiveError::Io {
                context: "open".into(),
                detail: "denied".into(),
            },
        ];
        let mut kinds: Vec<&str> = variants.iter().map(|v| v.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len(), "kind() tags must be unique");
        for v in &variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
