//! Payload codec helpers: a bounds-checked little-endian [`Cursor`] for
//! decoding chunk payloads, and `put_*` writers for encoding them.
//!
//! Every overrun surfaces as [`ArchiveError::Payload`] naming the chunk, and
//! [`Cursor::count`] caps element counts by the bytes actually remaining so
//! a corrupt length field can never drive a huge allocation.

use crate::error::ArchiveError;

/// A little-endian read cursor over one chunk's payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    chunk: String,
}

impl<'a> Cursor<'a> {
    /// Starts decoding `bytes`; `chunk` labels errors (usually the chunk
    /// path).
    pub fn new(bytes: &'a [u8], chunk: impl Into<String>) -> Self {
        Cursor {
            bytes,
            pos: 0,
            chunk: chunk.into(),
        }
    }

    fn fail(&self, detail: String) -> ArchiveError {
        ArchiveError::Payload {
            chunk: self.chunk.clone(),
            detail,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ArchiveError> {
        if self.remaining() < n {
            return Err(self.fail(format!(
                "needed {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ArchiveError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ArchiveError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ArchiveError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ArchiveError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `f32` (bit pattern preserved exactly).
    pub fn f32(&mut self) -> Result<f32, ArchiveError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `f64` (bit pattern preserved exactly).
    pub fn f64(&mut self) -> Result<f64, ArchiveError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Validates a decoded element count against the bytes remaining:
    /// `n` elements of at least `elem_size` bytes each must still fit.
    /// Returns `n` as `usize` so callers can `Vec::with_capacity` it safely.
    pub fn count(&self, n: u64, elem_size: usize, what: &str) -> Result<usize, ArchiveError> {
        debug_assert!(elem_size > 0);
        let fit = (self.remaining() / elem_size.max(1)) as u64;
        if n > fit {
            return Err(self.fail(format!(
                "{what} count {n} cannot fit in {} remaining bytes ({elem_size} B each)",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Asserts the payload is fully consumed — trailing garbage is a decode
    /// error, which is what makes re-encode parity meaningful.
    pub fn finish(self) -> Result<(), ArchiveError> {
        if self.remaining() != 0 {
            let n = self.remaining();
            return Err(self.fail(format!("{n} trailing bytes after the last field")));
        }
        Ok(())
    }
}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `f32` (bit pattern preserved exactly).
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `f64` (bit pattern preserved exactly).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_f32(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u16().unwrap(), 300);
        assert_eq!(c.u32().unwrap(), 70_000);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(c.f64().unwrap().is_nan());
        c.finish().unwrap();
    }

    #[test]
    fn overrun_is_a_typed_payload_error() {
        let mut c = Cursor::new(&[1, 2], "tiny");
        let err = c.u32().expect_err("2 bytes cannot yield a u32");
        assert_eq!(err.kind(), "payload");
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let c = Cursor::new(&[0u8; 16], "caps");
        let err = c
            .count(u64::MAX, 4, "points")
            .expect_err("count beyond remaining must fail");
        assert_eq!(err.kind(), "payload");
        assert_eq!(c.count(4, 4, "points").unwrap(), 4);
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut c = Cursor::new(&[1, 2, 3], "trail");
        c.u8().unwrap();
        let err = c.finish().expect_err("2 bytes left");
        assert_eq!(err.kind(), "payload");
    }
}
