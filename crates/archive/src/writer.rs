//! The forward-only archive writer.
//!
//! An [`ArchiveWriter`] streams chunks into an in-memory buffer (header
//! first, each payload immediately followed by its length + checksum
//! footer), then [`ArchiveWriter::finish`] appends the index and trailer.
//! No seeking ever happens, so the same code could stream to a socket; and
//! because the encoding is fully deterministic — insertion order is
//! preserved, no timestamps, no padding — identical content produces
//! identical bytes, which is what the parity tests lock down.

use std::path::Path;

use crate::error::ArchiveError;
use crate::format::{
    encode_index, encode_trailer, fnv1a64, kind, ChunkRec, GroupRec, MAGIC, MAX_CHUNKS,
    MAX_NAME_LEN, ROOT_PARENT, VERSION,
};
use crate::payload::put_u64;

/// Name of the group holding archive metadata.
pub const META_GROUP: &str = "meta";
/// Path of the content-key chunk written by [`ArchiveWriter::set_key`].
pub const KEY_PATH: &str = "meta/key";

/// Builds a `.hsar` archive in memory, forward-only.
#[derive(Debug)]
pub struct ArchiveWriter {
    buf: Vec<u8>,
    groups: Vec<GroupRec>,
    chunks: Vec<ChunkRec>,
    /// Stack of open groups; the last entry is where chunks land.
    stack: Vec<u32>,
}

impl Default for ArchiveWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchiveWriter {
    /// Starts an empty archive (header already emitted, root group open).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&[0u8; 3]);
        ArchiveWriter {
            buf,
            groups: vec![GroupRec {
                parent: ROOT_PARENT,
                name: String::new(),
            }],
            chunks: Vec::new(),
            stack: vec![0],
        }
    }

    fn check_name(name: &str) {
        assert!(
            !name.is_empty() && name.len() <= MAX_NAME_LEN && !name.contains('/'),
            "archive names must be non-empty, at most {MAX_NAME_LEN} bytes, and '/'-free: {name:?}"
        );
    }

    fn current_group(&self) -> u32 {
        *self.stack.last().expect("root group is never popped")
    }

    fn group_path(&self, group: u32) -> String {
        let mut parts = Vec::new();
        let mut g = group;
        while g != 0 {
            let rec = &self.groups[g as usize];
            parts.push(rec.name.as_str());
            g = rec.parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Opens a child group of the current group. Groups nest; close with
    /// [`ArchiveWriter::end_group`].
    pub fn begin_group(&mut self, name: &str) {
        Self::check_name(name);
        let parent = self.current_group();
        let id = self.groups.len() as u32;
        self.groups.push(GroupRec {
            parent,
            name: name.to_string(),
        });
        self.stack.push(id);
    }

    /// Closes the most recently opened group.
    ///
    /// # Panics
    /// If only the root group is open.
    pub fn end_group(&mut self) {
        assert!(self.stack.len() > 1, "cannot end the root group");
        self.stack.pop();
    }

    /// Appends a typed chunk to the current group: payload bytes followed by
    /// the 16-byte length + FNV-1a checksum footer.
    ///
    /// # Panics
    /// On an invalid name, a duplicate path within the archive, or more than
    /// [`MAX_CHUNKS`] chunks — all programmer errors, not data errors.
    pub fn add_chunk(&mut self, name: &str, kind: u32, payload: &[u8]) {
        Self::check_name(name);
        assert!(self.chunks.len() < MAX_CHUNKS, "too many chunks");
        let group = self.current_group();
        let path = self.chunk_path(group, name);
        assert!(
            !self
                .chunks
                .iter()
                .any(|c| c.group == group && c.name == name),
            "duplicate chunk path '{path}'"
        );
        let offset = self.buf.len() as u64;
        let checksum = fnv1a64(payload);
        self.buf.extend_from_slice(payload);
        put_u64(&mut self.buf, payload.len() as u64);
        put_u64(&mut self.buf, checksum);
        self.chunks.push(ChunkRec {
            group,
            kind,
            name: name.to_string(),
            offset,
            len: payload.len() as u64,
            checksum,
        });
    }

    fn chunk_path(&self, group: u32, name: &str) -> String {
        let gp = self.group_path(group);
        if gp.is_empty() {
            name.to_string()
        } else {
            format!("{gp}/{name}")
        }
    }

    /// Records the archive's content key as a `meta/key` chunk (created in a
    /// `meta` group under the root regardless of the currently open group).
    /// Readers check it with `expect_key` to turn stale cache files into
    /// typed [`ArchiveError::KeyMismatch`] misses instead of wrong data.
    pub fn set_key(&mut self, key: &str) {
        let saved = std::mem::replace(&mut self.stack, vec![0]);
        self.begin_group(META_GROUP);
        self.add_chunk("key", kind::META, key.as_bytes());
        self.stack = saved;
    }

    /// Seals the archive: appends the index and trailer, returning the
    /// complete file image.
    pub fn finish(self) -> Vec<u8> {
        let mut buf = self.buf;
        let index = encode_index(&self.groups, &self.chunks);
        let index_offset = buf.len() as u64;
        let checksum = fnv1a64(&index);
        buf.extend_from_slice(&index);
        buf.extend_from_slice(&encode_trailer(index_offset, index.len() as u64, checksum));
        buf
    }

    /// Seals the archive and writes it atomically: the bytes land in a
    /// `.tmp` sibling first and are renamed into place, so a reader never
    /// observes a half-written archive and a crash leaves the old file
    /// intact.
    pub fn finish_to_file(self, path: &Path) -> Result<(), ArchiveError> {
        let bytes = self.finish();
        let tmp = path.with_extension("hsar.tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| ArchiveError::io(tmp.display().to_string(), e))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            ArchiveError::io(format!("rename {} -> {}", tmp.display(), path.display()), e)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FOOTER_LEN, HEADER_LEN, TRAILER_LEN};

    #[test]
    fn empty_archive_is_header_index_trailer() {
        let bytes = ArchiveWriter::new().finish();
        assert_eq!(&bytes[0..4], b"HSAR");
        assert_eq!(bytes[4], VERSION);
        assert_eq!(&bytes[bytes.len() - 4..], b"RASH");
        assert!(bytes.len() > HEADER_LEN + TRAILER_LEN);
    }

    #[test]
    fn chunk_bytes_and_footer_are_laid_out_in_order() {
        let mut w = ArchiveWriter::new();
        w.add_chunk("a", kind::META, b"hello");
        let bytes = w.finish();
        assert_eq!(&bytes[HEADER_LEN..HEADER_LEN + 5], b"hello");
        let footer = &bytes[HEADER_LEN + 5..HEADER_LEN + 5 + FOOTER_LEN];
        assert_eq!(u64::from_le_bytes(footer[0..8].try_into().unwrap()), 5);
        assert_eq!(
            u64::from_le_bytes(footer[8..16].try_into().unwrap()),
            fnv1a64(b"hello")
        );
    }

    #[test]
    fn identical_content_produces_identical_bytes() {
        let build = || {
            let mut w = ArchiveWriter::new();
            w.set_key("k");
            w.begin_group("g");
            w.add_chunk("x", kind::POINTS, &[1, 2, 3]);
            w.end_group();
            w.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "duplicate chunk path")]
    fn duplicate_paths_panic() {
        let mut w = ArchiveWriter::new();
        w.add_chunk("a", kind::META, b"1");
        w.add_chunk("a", kind::META, b"2");
    }
}
