//! Deterministic archive corruptions for fault-injection tests.
//!
//! Mirrors `hsu_sim::faults` for traces: every [`ArchiveFault`] class is a
//! *guaranteed* fault (the corrupted bytes can never decode as the original
//! archive), generated deterministically from a seed so test failures
//! reproduce. The corruption tests pin each class to its typed
//! [`ArchiveError`](crate::ArchiveError):
//!
//! | fault                         | pinned error                         |
//! |-------------------------------|--------------------------------------|
//! | [`ArchiveFault::Truncate`]    | `Truncated` / `BadMagic` / `MalformedIndex` / `ChecksumMismatch` |
//! | [`ArchiveFault::ChecksumFlip`]| `ChecksumMismatch`                   |
//! | [`ArchiveFault::BogusChunkKind`] | `BadChunkKind`                    |
//! | [`ArchiveFault::VersionSkew`] | `VersionSkew`                        |
//!
//! Truncation maps to a *set* because the typed error depends on where the
//! cut lands (inside the header, the data region, the index, or the
//! trailer) — the contract is that it is always one of those four decode
//! errors, never a panic, never an `Io`, and never success.
//!
//! `BogusChunkKind` is the subtle one: the kind tag lives inside the
//! checksummed index, so naively patching the byte would surface as an index
//! `ChecksumMismatch` rather than the intended `BadChunkKind`. The injector
//! therefore re-encodes the doctored index and trailer through the same
//! code path the writer uses, keeping every checksum consistent so the only
//! fault a reader can trip on is the bogus tag itself.

use crate::format::{self, parse_trailer, HEADER_LEN, TRAILER_LEN, VERSION};

/// A chunk-kind value outside the registry, used by [`ArchiveFault::BogusChunkKind`].
pub const BOGUS_KIND: u32 = 0xdead_beef;

/// One class of archive corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveFault {
    /// Cut the file short at a seed-chosen offset (any offset, including 0).
    Truncate,
    /// Flip one bit of a seed-chosen chunk's stored footer checksum.
    ChecksumFlip,
    /// Rewrite a seed-chosen chunk's kind tag to [`BOGUS_KIND`], with the
    /// index and trailer re-encoded so their checksums stay valid.
    BogusChunkKind,
    /// Overwrite the header version byte with a seed-chosen wrong version.
    VersionSkew,
}

/// Every archive fault class, for sweep-style tests.
pub const ARCHIVE_FAULTS: [ArchiveFault; 4] = [
    ArchiveFault::Truncate,
    ArchiveFault::ChecksumFlip,
    ArchiveFault::BogusChunkKind,
    ArchiveFault::VersionSkew,
];

/// The same splitmix64 the trace fault injector uses: a tiny, deterministic
/// seed-to-offset mixer, not a statistical RNG.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn truncate(bytes: &[u8], r: u64) -> Vec<u8> {
    let cut = (r % bytes.len().max(1) as u64) as usize;
    bytes[..cut].to_vec()
}

/// Parses the index of a healthy archive image. Returns `None` when the
/// input is not a well-formed archive (fault generators then fall back to
/// truncation, which is a guaranteed fault on any input).
#[allow(clippy::type_complexity)]
fn parsed_index(bytes: &[u8]) -> Option<(u64, Vec<format::GroupRec>, Vec<format::ChunkRec>)> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return None;
    }
    let trailer_bytes: &[u8; TRAILER_LEN] = bytes[bytes.len() - TRAILER_LEN..].try_into().ok()?;
    let trailer = parse_trailer(trailer_bytes, bytes.len() as u64).ok()?;
    let index_bytes =
        &bytes[trailer.index_offset as usize..(trailer.index_offset + trailer.index_len) as usize];
    let (groups, chunks) = format::decode_index(index_bytes).ok()?;
    if chunks.is_empty() {
        return None;
    }
    Some((trailer.index_offset, groups, chunks))
}

/// Applies `fault` to an archive image, deterministically in `seed`.
/// The result is guaranteed corrupt: decoding it must yield the fault's
/// pinned typed error, never the original data.
pub fn corrupt_archive_bytes(bytes: &[u8], fault: ArchiveFault, seed: u64) -> Vec<u8> {
    let r = splitmix64(seed);
    match fault {
        ArchiveFault::Truncate => truncate(bytes, r),
        ArchiveFault::ChecksumFlip => {
            let Some((_, _, chunks)) = parsed_index(bytes) else {
                return truncate(bytes, r);
            };
            let chunk = &chunks[(r % chunks.len() as u64) as usize];
            // The footer checksum's 8 bytes start right after the payload
            // and its 8-byte length field.
            let field = (chunk.offset + chunk.len + 8) as usize;
            let bit = (splitmix64(r) % 64) as usize;
            let mut out = bytes.to_vec();
            out[field + bit / 8] ^= 1 << (bit % 8);
            out
        }
        ArchiveFault::BogusChunkKind => {
            let Some((index_offset, groups, mut chunks)) = parsed_index(bytes) else {
                return truncate(bytes, r);
            };
            let victim = (r % chunks.len() as u64) as usize;
            chunks[victim].kind = BOGUS_KIND;
            let index = format::encode_index(&groups, &chunks);
            let mut out = bytes[..index_offset as usize].to_vec();
            let checksum = format::fnv1a64(&index);
            out.extend_from_slice(&index);
            out.extend_from_slice(&format::encode_trailer(
                index_offset,
                index.len() as u64,
                checksum,
            ));
            out
        }
        ArchiveFault::VersionSkew => {
            let mut out = bytes.to_vec();
            if out.len() > 4 {
                let mut v = (r % 255) as u8;
                if v >= VERSION {
                    v = v.wrapping_add(1);
                }
                out[4] = v;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::kind;
    use crate::reader::SliceArchive;
    use crate::writer::ArchiveWriter;

    fn sample() -> Vec<u8> {
        let mut w = ArchiveWriter::new();
        w.set_key("fault-sample");
        w.begin_group("g");
        w.add_chunk("a", kind::TRACE, &[1u8; 64]);
        w.add_chunk("b", kind::POINTS, &[2u8; 33]);
        w.end_group();
        w.finish()
    }

    #[test]
    fn bogus_kind_keeps_index_checksum_valid() {
        let bytes = sample();
        let bad = corrupt_archive_bytes(&bytes, ArchiveFault::BogusChunkKind, 3);
        // The archive still opens (index checksum intact) …
        let a = SliceArchive::parse(&bad).expect("doctored index must still parse");
        // … and exactly one chunk now carries the bogus tag.
        let bogus = a.entries().iter().filter(|e| e.kind == BOGUS_KIND).count();
        assert_eq!(bogus, 1);
    }

    #[test]
    fn version_skew_never_produces_the_real_version() {
        let bytes = sample();
        for seed in 0..512 {
            let bad = corrupt_archive_bytes(&bytes, ArchiveFault::VersionSkew, seed);
            assert_ne!(bad[4], VERSION, "seed {seed}");
        }
    }

    #[test]
    fn faults_are_deterministic_in_the_seed() {
        let bytes = sample();
        for fault in ARCHIVE_FAULTS {
            assert_eq!(
                corrupt_archive_bytes(&bytes, fault, 99),
                corrupt_archive_bytes(&bytes, fault, 99),
                "{fault:?}"
            );
        }
    }
}
