//! Workload construction and the cached simulation runs.

use crate::cache::ArchiveCache;
use crate::runner::{FaultPolicy, JobOutcome, RunRecord};
use hsu_datasets::{Dataset, DatasetId};
use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
use hsu_kernels::flann::{FlannParams, FlannWorkload};
use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
use hsu_kernels::{offloadable_fraction, Variant};
use hsu_sim::config::{GpuConfig, RtCoreKind, SimMode};
use hsu_sim::trace::KernelTrace;
use hsu_sim::{Gpu, SimError, SimReport};

/// Which application a run belongs to (the paper's four workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Graph-based ANN (GGNN).
    Ggnn,
    /// k-d tree ANN (FLANN) — "F" prefix in the figures.
    Flann,
    /// BVH radius ANN — "B" prefix in the figures.
    Bvhnn,
    /// B+-tree key-value store.
    Btree,
}

impl App {
    /// Figure label, including the paper's F/B dataset prefixes.
    pub fn prefix(self) -> &'static str {
        match self {
            App::Ggnn => "",
            App::Flann => "F-",
            App::Bvhnn => "B-",
            App::Btree => "",
        }
    }

    /// Application name.
    pub fn name(self) -> &'static str {
        match self {
            App::Ggnn => "GGNN",
            App::Flann => "FLANN",
            App::Bvhnn => "BVH-NN",
            App::Btree => "B+",
        }
    }
}

/// One application × dataset simulation bundle.
#[derive(Debug)]
pub struct AppRun {
    /// Application.
    pub app: App,
    /// Dataset label (with F-/B- prefix where the paper uses one).
    pub label: String,
    /// Dataset id.
    pub dataset: DatasetId,
    /// HSU-lowered run.
    pub hsu: SimReport,
    /// Baseline (no RT hardware) run.
    pub base: SimReport,
    /// Baseline with offloadable ops stripped (Fig. 7 probe).
    pub stripped: SimReport,
}

impl AppRun {
    /// HSU speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.hsu.speedup_over(&self.base)
    }

    /// Offloadable-cycle fraction (Fig. 7).
    pub fn offloadable(&self) -> f64 {
        offloadable_fraction(&self.base, &self.stripped)
    }
}

/// Suite-level knobs.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// SMs to simulate (scaled machine; the paper uses 80).
    pub sms: usize,
    /// Global workload down-scale: 1 = the suite's standard sizes, larger
    /// values shrink datasets/queries proportionally (used by `--quick` and
    /// the test suite).
    pub scale_divisor: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the run matrix (1 = fully sequential). Results
    /// are identical for every value; only wall-time changes.
    pub jobs: usize,
    /// How the simulator advances time. Reports (and therefore every
    /// figure and table) are identical for every mode; only wall-time and
    /// the scheduler counters change.
    pub sim_mode: SimMode,
    /// Worker threads *inside* each simulation when `sim_mode` is
    /// [`SimMode::ParallelEpoch`] (0 = derive from the machine). Reports are
    /// identical for every value. [`crate::runner::thread_budget`] splits
    /// the machine between `jobs` and this knob so the two levels of
    /// parallelism never oversubscribe the host.
    pub sim_threads: usize,
    /// Directory for the content-keyed `.hsar` build cache
    /// ([`crate::cache::ArchiveCache`]). `None` (the default) builds cold.
    /// Warm or cold, populated or empty, suite output is byte-identical —
    /// the cache only skips the dataset/index/trace construction work.
    pub archive_dir: Option<std::path::PathBuf>,
    /// Which RT-unit organization the simulated machine uses. A machine
    /// knob, not a workload knob: the archive cache keys pin generator
    /// inputs only, so both organizations share cached traces.
    pub rt_core: RtCoreKind,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            // Every measured row in EXPERIMENTS.md was produced on this
            // 8-SM machine; `simbench` overrides to the larger 32-SM
            // machine (closer to the paper's 80) for the scheduler bench.
            sms: 8,
            scale_divisor: 1,
            seed: 7,
            jobs: 1,
            sim_mode: SimMode::default(),
            sim_threads: 0,
            archive_dir: None,
            rt_core: RtCoreKind::default(),
        }
    }
}

impl SuiteConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        SuiteConfig {
            sms: 4,
            scale_divisor: 4,
            ..SuiteConfig::default()
        }
    }

    /// The same configuration with a different worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The same configuration with a different simulation mode.
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }

    /// The same configuration with a different per-simulation thread count.
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads;
        self
    }

    /// The same configuration with an archive-cache directory attached.
    pub fn with_archive_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.archive_dir = Some(dir.into());
        self
    }

    /// The same configuration with a different RT-unit organization.
    pub fn with_rt_core(mut self, kind: RtCoreKind) -> Self {
        self.rt_core = kind;
        self
    }

    /// The GPU configuration the suite simulates.
    pub fn gpu_config(&self) -> GpuConfig {
        GpuConfig {
            num_sms: self.sms,
            sim_mode: self.sim_mode,
            sim_threads: self.sim_threads,
            rt_core: self.rt_core,
            ..GpuConfig::small()
        }
    }

    fn scaled(&self, n: usize) -> usize {
        (n / self.scale_divisor).max(64)
    }
}

/// Standard suite sizes per GGNN dataset: `(points, queries)`. Sizes are
/// simulator-scale (documented in DESIGN.md §2); dimensions and metrics come
/// from the catalog and are exact.
fn ggnn_size(id: DatasetId) -> (usize, usize) {
    match id {
        DatasetId::Deep1b => (8000, 192),
        DatasetId::FashionMnist => (2000, 128),
        DatasetId::Mnist => (2000, 128),
        DatasetId::Gist => (1500, 128),
        DatasetId::Glove => (5000, 192),
        DatasetId::LastFm => (6000, 192),
        DatasetId::Nytimes => (4000, 192),
        DatasetId::Sift1m => (6000, 192),
        DatasetId::Sift10k => (3000, 192),
        _ => unreachable!("not a GGNN dataset"),
    }
}

/// The three lowered traces of one application × dataset — everything phase
/// B (simulation) and the sensitivity sweeps (Figs. 10/11) need, and exactly
/// what the archive cache stores. A warm run reconstructs these from
/// `.hsar` files without touching the generators or index builders.
#[derive(Debug)]
pub struct AppTraces {
    /// Application.
    pub app: App,
    /// Dataset id.
    pub dataset: DatasetId,
    /// Figure label (with F-/B- prefix where the paper uses one).
    pub label: String,
    /// HSU-lowered trace.
    pub hsu: KernelTrace,
    /// Baseline (no RT hardware) trace.
    pub base: KernelTrace,
    /// Baseline with offloadable ops stripped (Fig. 7 probe).
    pub stripped: KernelTrace,
}

impl AppTraces {
    /// The trace for one lowering variant.
    pub fn trace(&self, v: Variant) -> &KernelTrace {
        match v {
            Variant::Hsu => &self.hsu,
            Variant::Baseline => &self.base,
            Variant::BaselineStripped => &self.stripped,
        }
    }
}

/// The complete workload suite with cached standard-machine runs.
#[derive(Debug)]
pub struct Suite {
    /// Configuration used.
    pub config: SuiteConfig,
    /// The simulated GPU.
    pub gpu: Gpu,
    /// Retained lowered traces per app × dataset, in plan order (GGNN,
    /// then FLANN/BVH-NN interleaved per 3-D set, then B+). The
    /// sensitivity sweeps (Figs. 10/11) re-simulate these.
    pub traces: Vec<AppTraces>,
    /// Cached standard-machine runs for every app × dataset.
    pub runs: Vec<AppRun>,
    /// Per-simulation observability records, in run order (three per
    /// [`AppRun`]: hsu, base, stripped). Render with
    /// [`crate::runner::records_table`].
    pub records: Vec<RunRecord>,
}

/// Workload-construction jobs for phase A of [`Suite::build`]. One job per
/// dataset; the 3-D sets build FLANN and BVH-NN together so the generated
/// point cloud is shared, exactly as the sequential code did.
enum BuildJob {
    Ggnn(DatasetId),
    ThreeD(DatasetId),
    Btree(DatasetId),
}

/// Result of a fault-tolerant suite build: the suite (holding every app ×
/// dataset whose three variants all simulated) plus the per-job dispositions
/// for the partial report.
#[derive(Debug)]
pub struct SuiteBuild {
    /// The suite; under `keep_going`, apps with any failed variant are
    /// dropped from [`Suite::runs`].
    pub suite: Suite,
    /// Per-simulation outcomes in submission order (report values already
    /// moved into the suite). Render with [`crate::runner::outcomes_table`].
    pub outcomes: Vec<JobOutcome<()>>,
}

impl SuiteBuild {
    /// `true` when every simulation produced a report.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(JobOutcome::is_ok)
    }
}

impl Suite {
    /// Builds every workload and simulates the three lowerings.
    ///
    /// This is the expensive entry point (tens of seconds at standard
    /// scale); use [`SuiteConfig::quick`] for smoke tests and
    /// [`SuiteConfig::jobs`] to fan the run matrix across worker threads.
    /// Results are bit-identical for every `jobs` value: construction and
    /// simulation are pure functions of the config, and the runner merges
    /// results in stable key order.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or any simulation fails —
    /// callers that need partial results use [`Suite::build_with_policy`].
    pub fn build(config: SuiteConfig) -> Self {
        match Self::build_with_policy(config, &FaultPolicy::default()) {
            Ok(build) => {
                if let Some(bad) = build.outcomes.iter().find(|o| !o.is_ok()) {
                    let detail = match &bad.result {
                        Err(e) => e.to_string(),
                        Ok(()) => unreachable!("failed outcome without an error"),
                    };
                    panic!("suite build failed at {}: {detail}", bad.key);
                }
                build.suite
            }
            Err(e) => panic!("suite build failed: {e}"),
        }
    }

    /// Fault-tolerant variant of [`Suite::build`]: the simulation matrix
    /// runs under [`crate::runner::run_jobs_ft`], so a panicking, failing,
    /// or timed-out simulation is isolated, retried per `policy`, and — when
    /// `policy.keep_going` is set — reported while the remaining jobs still
    /// run to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the GPU configuration fails
    /// validation (nothing is built or simulated). Per-job failures are
    /// *not* errors; they are reported in [`SuiteBuild::outcomes`].
    pub fn build_with_policy(
        config: SuiteConfig,
        policy: &FaultPolicy,
    ) -> Result<SuiteBuild, SimError> {
        config.gpu_config().validate()?;
        let gpu = Gpu::new(config.gpu_config());

        // Phase A: construct (or load from the archive cache) every
        // lowered trace in parallel. Each job derives everything from
        // `config` — no shared RNG or other mutable state — so results are
        // identical for any worker count, and identical warm or cold.
        let cache = ArchiveCache::new(config.archive_dir.clone());
        let traces = Self::prepare_traces(&config, &cache);
        if cache.enabled() {
            eprintln!(
                "archive cache: {} hits, {} misses ({})",
                cache.hits(),
                cache.misses(),
                config
                    .archive_dir
                    .as_deref()
                    .unwrap_or_else(|| std::path::Path::new("?"))
                    .display()
            );
        }

        // Phase B: the simulation matrix — every (app × dataset × variant)
        // triple is one job with a stable key; reports come back in
        // submission order, so `runs` is identical for any worker count.
        const VARIANTS: [(Variant, &str); 3] = [
            (Variant::Hsu, "hsu"),
            (Variant::Baseline, "base"),
            (Variant::BaselineStripped, "stripped"),
        ];
        let mut sim_jobs = Vec::new();
        for at in &traces {
            for (variant, vname) in VARIANTS {
                let key = format!("{}/{vname}", at.label);
                sim_jobs.push((key.clone(), (key, at, variant)));
            }
        }
        let outs = crate::runner::run_jobs_ft(
            config.jobs,
            policy,
            sim_jobs,
            |_, (key, at, variant), limits| {
                let trace = at.trace(*variant);
                crate::runner::timed_run(key.clone(), || gpu.run_guarded(trace, limits))
            },
        );

        let mut runs = Vec::new();
        let mut records = Vec::new();
        let mut outcomes = Vec::new();
        let mut outs = outs.into_iter();
        for at in &traces {
            // One triple (hsu/base/stripped) per planned app × dataset; the
            // pool returns an outcome for every submitted job.
            let mut triple = Vec::with_capacity(3);
            for _ in 0..VARIANTS.len() {
                let Some(out) = outs.next() else {
                    unreachable!("pool returned an outcome per job");
                };
                triple.push(out);
            }
            let all_ok = triple.iter().all(JobOutcome::is_ok);
            let mut reports = Vec::with_capacity(VARIANTS.len());
            for o in triple {
                let result = match o.result {
                    Ok(v) => {
                        reports.push(v);
                        Ok(())
                    }
                    Err(e) => Err(e),
                };
                outcomes.push(JobOutcome {
                    key: o.key,
                    attempts: o.attempts,
                    status: o.status,
                    result,
                });
            }
            if all_ok {
                let mut reports = reports.into_iter();
                let (Some((hsu, r0)), Some((base, r1)), Some((stripped, r2))) =
                    (reports.next(), reports.next(), reports.next())
                else {
                    unreachable!("all-ok triple yields three reports");
                };
                runs.push(AppRun {
                    app: at.app,
                    label: at.label.clone(),
                    dataset: at.dataset,
                    hsu,
                    base,
                    stripped,
                });
                records.extend([r0, r1, r2]);
            }
        }

        Ok(SuiteBuild {
            suite: Suite {
                config,
                gpu,
                traces,
                runs,
                records,
            },
            outcomes,
        })
    }

    /// Phase A on its own: produce every lowered trace the simulation
    /// matrix consumes, in plan order, consulting `cache` before building.
    /// This is the part of a suite run the archive cache can skip entirely;
    /// `simbench` times it cold vs warm.
    pub fn prepare_traces(config: &SuiteConfig, cache: &ArchiveCache) -> Vec<AppTraces> {
        let mut build_jobs = Vec::new();
        for id in DatasetId::HIGH_DIM {
            build_jobs.push(BuildJob::Ggnn(id));
        }
        for id in DatasetId::THREE_D {
            build_jobs.push(BuildJob::ThreeD(id));
        }
        for id in [DatasetId::BTree1m, DatasetId::BTree10k] {
            build_jobs.push(BuildJob::Btree(id));
        }
        crate::runner::run_jobs(config.jobs, build_jobs, |_, job| {
            build_one(config, cache, job)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Runs for one application, in dataset order.
    pub fn runs_for(&self, app: App) -> impl Iterator<Item = &AppRun> + '_ {
        self.runs.iter().filter(move |r| r.app == app)
    }

    /// Retained traces for one application, in dataset order.
    pub fn traces_for(&self, app: App) -> impl Iterator<Item = &AppTraces> + '_ {
        self.traces.iter().filter(move |t| t.app == app)
    }

    /// Geometric-mean HSU speedup for one application (the paper reports
    /// per-app averages in §VI-C).
    pub fn mean_speedup(&self, app: App) -> f64 {
        let speedups: Vec<f64> = self.runs_for(app).map(|r| r.speedup()).collect();
        geomean(&speedups)
    }
}

/// Geometric mean; 1.0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The three variant traces of one workload, in the fixed (hsu, base,
/// stripped) order the trace archives use.
fn lower_all(wl: &impl Lowerable) -> [KernelTrace; 3] {
    [
        wl.trace(Variant::Hsu),
        wl.trace(Variant::Baseline),
        wl.trace(Variant::BaselineStripped),
    ]
}

/// The one method every workload shares that phase A needs.
trait Lowerable {
    fn trace(&self, v: Variant) -> KernelTrace;
}

macro_rules! impl_lowerable {
    ($($ty:ty),*) => {$(
        impl Lowerable for $ty {
            fn trace(&self, v: Variant) -> KernelTrace {
                <$ty>::trace(self, v)
            }
        }
    )*};
}
impl_lowerable!(GgnnWorkload, FlannWorkload, BvhnnWorkload, BtreeWorkload);

fn app_traces(app: App, id: DatasetId, traces: Vec<KernelTrace>) -> AppTraces {
    let mut it = traces.into_iter();
    let (Some(hsu), Some(base), Some(stripped)) = (it.next(), it.next(), it.next()) else {
        unreachable!("trace archives carry exactly three variants per app");
    };
    AppTraces {
        app,
        dataset: id,
        label: format!("{}{}", app.prefix(), hsu_datasets::spec(id).abbr),
        hsu,
        base,
        stripped,
    }
}

/// The generated dataset for one suite slot, via the cache when possible.
/// The key pins the generator version, dataset id, seed, and exact size, so
/// a restored dataset is bit-identical to a regenerated one.
fn cached_dataset(cache: &ArchiveCache, id: DatasetId, seed: u64, n: usize) -> Dataset {
    let dkey = format!("hsar-dataset-v1|{id:?}|seed={seed}|n={n}");
    let stem = format!("dataset-{id:?}");
    if let Some(ds) = cache.load_dataset(&stem, &dkey, id) {
        return ds;
    }
    let ds = Dataset::generate_scaled(id, seed, Some(n));
    cache.store_dataset(&stem, &dkey, &ds);
    ds
}

/// Executes one phase-A construction job. Pure function of the config: the
/// parallel build is deterministic because nothing here reads shared state
/// (the archive cache only short-circuits work whose result the key fully
/// determines). Returns the job's [`AppTraces`] in plan order — one entry
/// for GGNN and B+ jobs, `[FLANN, BVH-NN]` for the shared 3-D jobs.
///
/// Cache layering, outermost first: a trace-archive hit skips everything;
/// on a miss the dataset and index archives are consulted before their
/// generators run, and every rebuilt artifact is stored back.
fn build_one(config: &SuiteConfig, cache: &ArchiveCache, job: BuildJob) -> Vec<AppTraces> {
    let seed = config.seed;
    match job {
        BuildJob::Ggnn(id) => {
            let spec = hsu_datasets::spec(id);
            let (points, queries) = ggnn_size(id);
            let n = config.scaled(points);
            let Some(metric) = spec.metric else {
                panic!("ANN dataset {id:?} has no metric");
            };
            let params = GgnnParams {
                points: n,
                dim: spec.dims,
                queries: config.scaled(queries).max(48).min(queries.max(48)),
                metric,
                k: 10,
                ef: 64,
                m: 16,
                seed,
            };
            let tkey = format!("hsar-traces-v1|ggnn|{id:?}|{params:?}");
            let tstem = format!("traces-ggnn-{id:?}");
            let names = ["hsu", "base", "stripped"];
            if let Some(traces) = cache.load_traces(&tstem, &tkey, &names) {
                return vec![app_traces(App::Ggnn, id, traces)];
            }
            let data = cached_dataset(cache, id, seed, n);
            let Some(data) = data.points().cloned() else {
                panic!("GGNN dataset {id:?} is not a point dataset");
            };
            let gcfg = GgnnWorkload::graph_config(&params);
            let gkey = format!("hsar-graph-v1|{id:?}|seed={seed}|n={n}|metric={metric:?}|{gcfg:?}");
            let gstem = format!("graph-{id:?}");
            let graph = cache.load_graph(&gstem, &gkey).unwrap_or_else(|| {
                let graph = hsu_graph::HnswGraph::build(&data, metric, gcfg, seed);
                cache.store_graph(&gstem, &gkey, &graph);
                graph
            });
            let wl = GgnnWorkload::build_with_graph(&params, &data, &graph);
            let traces = lower_all(&wl);
            cache.store_traces(
                &tstem,
                &tkey,
                &names.iter().copied().zip(traces.iter()).collect::<Vec<_>>(),
            );
            vec![app_traces(App::Ggnn, id, traces.into())]
        }
        BuildJob::ThreeD(id) => {
            let spec = hsu_datasets::spec(id);
            let n = config.scaled(spec.scaled_points.min(15_000));
            let queries = config.scaled(4096).max(2048);
            let fparams = FlannParams {
                points: n,
                queries,
                k: 5,
                checks: 16,
                seed,
            };
            let bparams = BvhnnParams {
                points: n,
                queries,
                radius_scale: 1.5,
                flavor: Default::default(),
                seed,
            };
            let tkey = format!("hsar-traces-v1|3d|{id:?}|{fparams:?}|{bparams:?}");
            let tstem = format!("traces-3d-{id:?}");
            let names = [
                "flann-hsu",
                "flann-base",
                "flann-stripped",
                "bvhnn-hsu",
                "bvhnn-base",
                "bvhnn-stripped",
            ];
            if let Some(mut traces) = cache.load_traces(&tstem, &tkey, &names) {
                let bvhnn = traces.split_off(3);
                return vec![
                    app_traces(App::Flann, id, traces),
                    app_traces(App::Bvhnn, id, bvhnn),
                ];
            }
            let data = cached_dataset(cache, id, seed, n);
            let Some(data) = data.points().cloned() else {
                panic!("3-D dataset {id:?} is not a point dataset");
            };
            let kkey = format!("hsar-kdtree-v1|{id:?}|seed={seed}|n={n}|leaf=4|metric=euclid");
            let kstem = format!("kdtree-{id:?}");
            let tree = cache.load_kdtree(&kstem, &kkey).unwrap_or_else(|| {
                let tree = FlannWorkload::build_tree(&data);
                cache.store_kdtree(&kstem, &kkey, &tree);
                tree
            });
            let fw = FlannWorkload::build_with_tree(&fparams, &data, &tree);
            let bkey = format!(
                "hsar-bvh-v1|{id:?}|seed={seed}|n={n}|flavor={:?}|rs={}",
                bparams.flavor, bparams.radius_scale
            );
            let bstem = format!("bvh-{id:?}");
            let (bvh2, radius) = cache.load_bvh(&bstem, &bkey).unwrap_or_else(|| {
                let (bvh2, radius) = BvhnnWorkload::plan(&bparams, &data);
                cache.store_bvh(&bstem, &bkey, &bvh2, radius);
                (bvh2, radius)
            });
            let bw = BvhnnWorkload::build_with_bvh(&bparams, &data, &bvh2, radius);
            let ftr = lower_all(&fw);
            let btr = lower_all(&bw);
            let all: Vec<(&str, &KernelTrace)> = names
                .iter()
                .copied()
                .zip(ftr.iter().chain(btr.iter()))
                .collect();
            cache.store_traces(&tstem, &tkey, &all);
            vec![
                app_traces(App::Flann, id, ftr.into()),
                app_traces(App::Bvhnn, id, btr.into()),
            ]
        }
        BuildJob::Btree(id) => {
            let spec = hsu_datasets::spec(id);
            let params = BtreeParams {
                keys: config.scaled(spec.scaled_points),
                queries: config.scaled(8192).max(2048),
                branch: 256,
                seed,
            };
            let tkey = format!("hsar-traces-v1|btree|{id:?}|{params:?}");
            let tstem = format!("traces-btree-{id:?}");
            let names = ["hsu", "base", "stripped"];
            if let Some(traces) = cache.load_traces(&tstem, &tkey, &names) {
                return vec![app_traces(App::Btree, id, traces)];
            }
            let (pairs, lookups) = BtreeWorkload::generate_inputs(&params);
            let ikey = format!("hsar-btree-v1|{id:?}|{params:?}");
            let istem = format!("btree-{id:?}");
            let tree = cache.load_btree(&istem, &ikey).unwrap_or_else(|| {
                let tree = hsu_btree::BPlusTree::bulk_build(pairs.clone(), params.branch);
                cache.store_btree(&istem, &ikey, &tree);
                tree
            });
            let wl = BtreeWorkload::build_with_tree(&pairs, &lookups, tree);
            let traces = lower_all(&wl);
            cache.store_traces(
                &tstem,
                &tkey,
                &names.iter().copied().zip(traces.iter()).collect::<Vec<_>>(),
            );
            vec![app_traces(App::Btree, id, traces.into())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[1.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "two suite builds are slow unoptimized; run with --release"
    )]
    fn parallel_build_matches_sequential() {
        let cfg = SuiteConfig {
            sms: 2,
            scale_divisor: 32,
            ..SuiteConfig::default()
        };
        let seq = Suite::build(cfg.clone());
        let par = Suite::build(cfg.with_jobs(8));
        assert_eq!(seq.runs.len(), par.runs.len());
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.hsu, b.hsu,
                "{} hsu report drifted under --jobs 8",
                a.label
            );
            assert_eq!(a.base, b.base, "{} base report drifted", a.label);
            assert_eq!(
                a.stripped, b.stripped,
                "{} stripped report drifted",
                a.label
            );
        }
        // Observability records keep stable keys and counters; only
        // wall-times may differ between the two builds.
        assert_eq!(seq.records.len(), par.records.len());
        for (ra, rb) in seq.records.iter().zip(&par.records) {
            assert_eq!(ra.key, rb.key);
            assert_eq!(ra.cycles, rb.cycles);
            assert_eq!(ra.peak_warp_buffer, rb.peak_warp_buffer);
        }
    }

    #[test]
    fn quick_suite_reproduces_paper_ordering() {
        let suite = Suite::build(SuiteConfig::quick());
        // 9 GGNN + 5 FLANN + 5 BVH-NN + 2 B+ = 21 app-dataset runs.
        assert_eq!(suite.runs.len(), 21);
        // Three observability records (hsu/base/stripped) per app run.
        assert_eq!(suite.records.len(), 63);
        // Every HSU run must beat its baseline (Fig. 9: all speedups > 1).
        for r in &suite.runs {
            assert!(
                r.speedup() > 0.95,
                "{} regressed: speedup {:.3}",
                r.label,
                r.speedup()
            );
        }
        // The paper's per-app ordering: BVH-NN > GGNN > FLANN > B+ on
        // average, with B+ the smallest.
        let bvh = suite.mean_speedup(App::Bvhnn);
        let btree = suite.mean_speedup(App::Btree);
        assert!(bvh > btree, "BVH-NN {bvh:.3} !> B+ {btree:.3}");
        // Offloadable fractions are sane.
        for r in &suite.runs {
            let f = r.offloadable();
            assert!((0.0..1.0).contains(&f), "{}: fraction {f}", r.label);
        }
    }
}
