//! Workload construction and the cached simulation runs.

use hsu_datasets::{Dataset, DatasetId};
use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
use hsu_kernels::flann::{FlannParams, FlannWorkload};
use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
use hsu_kernels::{offloadable_fraction, Variant};
use hsu_sim::config::GpuConfig;
use hsu_sim::{Gpu, SimReport};

/// Which application a run belongs to (the paper's four workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Graph-based ANN (GGNN).
    Ggnn,
    /// k-d tree ANN (FLANN) — "F" prefix in the figures.
    Flann,
    /// BVH radius ANN — "B" prefix in the figures.
    Bvhnn,
    /// B+-tree key-value store.
    Btree,
}

impl App {
    /// Figure label, including the paper's F/B dataset prefixes.
    pub fn prefix(self) -> &'static str {
        match self {
            App::Ggnn => "",
            App::Flann => "F-",
            App::Bvhnn => "B-",
            App::Btree => "",
        }
    }

    /// Application name.
    pub fn name(self) -> &'static str {
        match self {
            App::Ggnn => "GGNN",
            App::Flann => "FLANN",
            App::Bvhnn => "BVH-NN",
            App::Btree => "B+",
        }
    }
}

/// One application × dataset simulation bundle.
#[derive(Debug)]
pub struct AppRun {
    /// Application.
    pub app: App,
    /// Dataset label (with F-/B- prefix where the paper uses one).
    pub label: String,
    /// Dataset id.
    pub dataset: DatasetId,
    /// HSU-lowered run.
    pub hsu: SimReport,
    /// Baseline (no RT hardware) run.
    pub base: SimReport,
    /// Baseline with offloadable ops stripped (Fig. 7 probe).
    pub stripped: SimReport,
}

impl AppRun {
    /// HSU speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.hsu.speedup_over(&self.base)
    }

    /// Offloadable-cycle fraction (Fig. 7).
    pub fn offloadable(&self) -> f64 {
        offloadable_fraction(&self.base, &self.stripped)
    }
}

/// Suite-level knobs.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// SMs to simulate (scaled machine; the paper uses 80).
    pub sms: usize,
    /// Global workload down-scale: 1 = the suite's standard sizes, larger
    /// values shrink datasets/queries proportionally (used by `--quick` and
    /// the test suite).
    pub scale_divisor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig { sms: 8, scale_divisor: 1, seed: 7 }
    }
}

impl SuiteConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        SuiteConfig { sms: 4, scale_divisor: 4, seed: 7 }
    }

    /// The GPU configuration the suite simulates.
    pub fn gpu_config(&self) -> GpuConfig {
        GpuConfig { num_sms: self.sms, ..GpuConfig::small() }
    }

    fn scaled(&self, n: usize) -> usize {
        (n / self.scale_divisor).max(64)
    }
}

/// Standard suite sizes per GGNN dataset: `(points, queries)`. Sizes are
/// simulator-scale (documented in DESIGN.md §2); dimensions and metrics come
/// from the catalog and are exact.
fn ggnn_size(id: DatasetId) -> (usize, usize) {
    match id {
        DatasetId::Deep1b => (8000, 192),
        DatasetId::FashionMnist => (2000, 128),
        DatasetId::Mnist => (2000, 128),
        DatasetId::Gist => (1500, 128),
        DatasetId::Glove => (5000, 192),
        DatasetId::LastFm => (6000, 192),
        DatasetId::Nytimes => (4000, 192),
        DatasetId::Sift1m => (6000, 192),
        DatasetId::Sift10k => (3000, 192),
        _ => unreachable!("not a GGNN dataset"),
    }
}

/// The complete workload suite with cached standard-machine runs.
#[derive(Debug)]
pub struct Suite {
    /// Configuration used.
    pub config: SuiteConfig,
    /// The simulated GPU.
    pub gpu: Gpu,
    /// Retained workloads for the sensitivity sweeps (Figs. 10/11).
    pub ggnn: Vec<(DatasetId, GgnnWorkload)>,
    /// FLANN workloads by dataset.
    pub flann: Vec<(DatasetId, FlannWorkload)>,
    /// BVH-NN workloads by dataset.
    pub bvhnn: Vec<(DatasetId, BvhnnWorkload)>,
    /// B+-tree workloads by dataset.
    pub btree: Vec<(DatasetId, BtreeWorkload)>,
    /// Cached standard-machine runs for every app × dataset.
    pub runs: Vec<AppRun>,
}

impl Suite {
    /// Builds every workload and simulates the three lowerings.
    ///
    /// This is the expensive entry point (tens of seconds at standard scale);
    /// use [`SuiteConfig::quick`] for smoke tests.
    pub fn build(config: SuiteConfig) -> Self {
        let gpu = Gpu::new(config.gpu_config());
        let mut runs = Vec::new();

        // GGNN over the nine high-dimensional sets.
        let mut ggnn = Vec::new();
        for id in DatasetId::HIGH_DIM {
            let spec = hsu_datasets::spec(id);
            let (points, queries) = ggnn_size(id);
            let data = Dataset::generate_scaled(id, config.seed, Some(config.scaled(points)))
                .points()
                .expect("point dataset")
                .clone();
            let params = GgnnParams {
                points: data.len(),
                dim: spec.dims,
                queries: config.scaled(queries).max(48).min(queries.max(48)),
                metric: spec.metric.expect("ANN dataset has a metric"),
                k: 10,
                ef: 64,
                m: 16,
                seed: config.seed,
            };
            let wl = GgnnWorkload::build_from_points(&params, &data);
            runs.push(run_all(App::Ggnn, id, &gpu, |v| wl.trace(v)));
            ggnn.push((id, wl));
        }

        // FLANN and BVH-NN over the five 3-D sets.
        let mut flann = Vec::new();
        let mut bvhnn = Vec::new();
        for id in DatasetId::THREE_D {
            let spec = hsu_datasets::spec(id);
            let n = config.scaled(spec.scaled_points.min(15_000));
            let data = Dataset::generate_scaled(id, config.seed, Some(n))
                .points()
                .expect("point dataset")
                .clone();
            let queries = config.scaled(4096).max(2048);

            let fw = FlannWorkload::build_from_points(
                &FlannParams { points: n, queries, k: 5, checks: 16, seed: config.seed },
                &data,
            );
            runs.push(run_all(App::Flann, id, &gpu, |v| fw.trace(v)));
            flann.push((id, fw));

            let bw = BvhnnWorkload::build_from_points(
                &BvhnnParams {
                    points: n,
                    queries,
                    radius_scale: 1.5,
                    flavor: Default::default(),
                    seed: config.seed,
                },
                &data,
            );
            runs.push(run_all(App::Bvhnn, id, &gpu, |v| bw.trace(v)));
            bvhnn.push((id, bw));
        }

        // B+-tree over the two key sets.
        let mut btree = Vec::new();
        for id in [DatasetId::BTree1m, DatasetId::BTree10k] {
            let spec = hsu_datasets::spec(id);
            let keys = config.scaled(spec.scaled_points);
            let wl = BtreeWorkload::build(&BtreeParams {
                keys,
                queries: config.scaled(8192).max(2048),
                branch: 256,
                seed: config.seed,
            });
            runs.push(run_all(App::Btree, id, &gpu, |v| wl.trace(v)));
            btree.push((id, wl));
        }

        Suite { config, gpu, ggnn, flann, bvhnn, btree, runs }
    }

    /// Runs for one application, in dataset order.
    pub fn runs_for(&self, app: App) -> impl Iterator<Item = &AppRun> + '_ {
        self.runs.iter().filter(move |r| r.app == app)
    }

    /// Geometric-mean HSU speedup for one application (the paper reports
    /// per-app averages in §VI-C).
    pub fn mean_speedup(&self, app: App) -> f64 {
        let speedups: Vec<f64> = self.runs_for(app).map(|r| r.speedup()).collect();
        geomean(&speedups)
    }
}

/// Geometric mean; 1.0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn run_all<F>(app: App, id: DatasetId, gpu: &Gpu, trace: F) -> AppRun
where
    F: Fn(Variant) -> hsu_sim::trace::KernelTrace,
{
    let spec = hsu_datasets::spec(id);
    AppRun {
        app,
        label: format!("{}{}", app.prefix(), spec.abbr),
        dataset: id,
        hsu: gpu.run(&trace(Variant::Hsu)),
        base: gpu.run(&trace(Variant::Baseline)),
        stripped: gpu.run(&trace(Variant::BaselineStripped)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[1.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quick_suite_reproduces_paper_ordering() {
        let suite = Suite::build(SuiteConfig::quick());
        // 9 GGNN + 5 FLANN + 5 BVH-NN + 2 B+ = 21 app-dataset runs.
        assert_eq!(suite.runs.len(), 21);
        // Every HSU run must beat its baseline (Fig. 9: all speedups > 1).
        for r in &suite.runs {
            assert!(
                r.speedup() > 0.95,
                "{} regressed: speedup {:.3}",
                r.label,
                r.speedup()
            );
        }
        // The paper's per-app ordering: BVH-NN > GGNN > FLANN > B+ on
        // average, with B+ the smallest.
        let bvh = suite.mean_speedup(App::Bvhnn);
        let btree = suite.mean_speedup(App::Btree);
        assert!(bvh > btree, "BVH-NN {bvh:.3} !> B+ {btree:.3}");
        // Offloadable fractions are sane.
        for r in &suite.runs {
            let f = r.offloadable();
            assert!((0.0..1.0).contains(&f), "{}: fraction {f}", r.label);
        }
    }
}
