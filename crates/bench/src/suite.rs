//! Workload construction and the cached simulation runs.

use crate::runner::{FaultPolicy, JobOutcome, RunRecord};
use hsu_datasets::{Dataset, DatasetId};
use hsu_kernels::btree::{BtreeParams, BtreeWorkload};
use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
use hsu_kernels::flann::{FlannParams, FlannWorkload};
use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
use hsu_kernels::{offloadable_fraction, Variant};
use hsu_sim::config::{GpuConfig, SimMode};
use hsu_sim::{Gpu, SimError, SimReport};

/// Which application a run belongs to (the paper's four workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Graph-based ANN (GGNN).
    Ggnn,
    /// k-d tree ANN (FLANN) — "F" prefix in the figures.
    Flann,
    /// BVH radius ANN — "B" prefix in the figures.
    Bvhnn,
    /// B+-tree key-value store.
    Btree,
}

impl App {
    /// Figure label, including the paper's F/B dataset prefixes.
    pub fn prefix(self) -> &'static str {
        match self {
            App::Ggnn => "",
            App::Flann => "F-",
            App::Bvhnn => "B-",
            App::Btree => "",
        }
    }

    /// Application name.
    pub fn name(self) -> &'static str {
        match self {
            App::Ggnn => "GGNN",
            App::Flann => "FLANN",
            App::Bvhnn => "BVH-NN",
            App::Btree => "B+",
        }
    }
}

/// One application × dataset simulation bundle.
#[derive(Debug)]
pub struct AppRun {
    /// Application.
    pub app: App,
    /// Dataset label (with F-/B- prefix where the paper uses one).
    pub label: String,
    /// Dataset id.
    pub dataset: DatasetId,
    /// HSU-lowered run.
    pub hsu: SimReport,
    /// Baseline (no RT hardware) run.
    pub base: SimReport,
    /// Baseline with offloadable ops stripped (Fig. 7 probe).
    pub stripped: SimReport,
}

impl AppRun {
    /// HSU speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.hsu.speedup_over(&self.base)
    }

    /// Offloadable-cycle fraction (Fig. 7).
    pub fn offloadable(&self) -> f64 {
        offloadable_fraction(&self.base, &self.stripped)
    }
}

/// Suite-level knobs.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// SMs to simulate (scaled machine; the paper uses 80).
    pub sms: usize,
    /// Global workload down-scale: 1 = the suite's standard sizes, larger
    /// values shrink datasets/queries proportionally (used by `--quick` and
    /// the test suite).
    pub scale_divisor: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the run matrix (1 = fully sequential). Results
    /// are identical for every value; only wall-time changes.
    pub jobs: usize,
    /// How the simulator advances time. Reports (and therefore every
    /// figure and table) are identical for every mode; only wall-time and
    /// the scheduler counters change.
    pub sim_mode: SimMode,
    /// Worker threads *inside* each simulation when `sim_mode` is
    /// [`SimMode::ParallelEpoch`] (0 = derive from the machine). Reports are
    /// identical for every value. [`crate::runner::thread_budget`] splits
    /// the machine between `jobs` and this knob so the two levels of
    /// parallelism never oversubscribe the host.
    pub sim_threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            // Every measured row in EXPERIMENTS.md was produced on this
            // 8-SM machine; `simbench` overrides to the larger 32-SM
            // machine (closer to the paper's 80) for the scheduler bench.
            sms: 8,
            scale_divisor: 1,
            seed: 7,
            jobs: 1,
            sim_mode: SimMode::default(),
            sim_threads: 0,
        }
    }
}

impl SuiteConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        SuiteConfig {
            sms: 4,
            scale_divisor: 4,
            ..SuiteConfig::default()
        }
    }

    /// The same configuration with a different worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The same configuration with a different simulation mode.
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }

    /// The same configuration with a different per-simulation thread count.
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads;
        self
    }

    /// The GPU configuration the suite simulates.
    pub fn gpu_config(&self) -> GpuConfig {
        GpuConfig {
            num_sms: self.sms,
            sim_mode: self.sim_mode,
            sim_threads: self.sim_threads,
            ..GpuConfig::small()
        }
    }

    fn scaled(&self, n: usize) -> usize {
        (n / self.scale_divisor).max(64)
    }
}

/// Standard suite sizes per GGNN dataset: `(points, queries)`. Sizes are
/// simulator-scale (documented in DESIGN.md §2); dimensions and metrics come
/// from the catalog and are exact.
fn ggnn_size(id: DatasetId) -> (usize, usize) {
    match id {
        DatasetId::Deep1b => (8000, 192),
        DatasetId::FashionMnist => (2000, 128),
        DatasetId::Mnist => (2000, 128),
        DatasetId::Gist => (1500, 128),
        DatasetId::Glove => (5000, 192),
        DatasetId::LastFm => (6000, 192),
        DatasetId::Nytimes => (4000, 192),
        DatasetId::Sift1m => (6000, 192),
        DatasetId::Sift10k => (3000, 192),
        _ => unreachable!("not a GGNN dataset"),
    }
}

/// The complete workload suite with cached standard-machine runs.
#[derive(Debug)]
pub struct Suite {
    /// Configuration used.
    pub config: SuiteConfig,
    /// The simulated GPU.
    pub gpu: Gpu,
    /// Retained workloads for the sensitivity sweeps (Figs. 10/11).
    pub ggnn: Vec<(DatasetId, GgnnWorkload)>,
    /// FLANN workloads by dataset.
    pub flann: Vec<(DatasetId, FlannWorkload)>,
    /// BVH-NN workloads by dataset.
    pub bvhnn: Vec<(DatasetId, BvhnnWorkload)>,
    /// B+-tree workloads by dataset.
    pub btree: Vec<(DatasetId, BtreeWorkload)>,
    /// Cached standard-machine runs for every app × dataset.
    pub runs: Vec<AppRun>,
    /// Per-simulation observability records, in run order (three per
    /// [`AppRun`]: hsu, base, stripped). Render with
    /// [`crate::runner::records_table`].
    pub records: Vec<RunRecord>,
}

/// A borrowed workload of any application, so one job type can carry the
/// whole simulation matrix.
#[derive(Clone, Copy)]
enum WlRef<'a> {
    Ggnn(&'a GgnnWorkload),
    Flann(&'a FlannWorkload),
    Bvhnn(&'a BvhnnWorkload),
    Btree(&'a BtreeWorkload),
}

impl WlRef<'_> {
    fn trace(&self, v: Variant) -> hsu_sim::trace::KernelTrace {
        match self {
            WlRef::Ggnn(wl) => wl.trace(v),
            WlRef::Flann(wl) => wl.trace(v),
            WlRef::Bvhnn(wl) => wl.trace(v),
            WlRef::Btree(wl) => wl.trace(v),
        }
    }
}

/// Workload-construction jobs for phase A of [`Suite::build`]. One job per
/// dataset; the 3-D sets build FLANN and BVH-NN together so the generated
/// point cloud is shared, exactly as the sequential code did.
enum BuildJob {
    Ggnn(DatasetId),
    ThreeD(DatasetId),
    Btree(DatasetId),
}

enum Built {
    Ggnn(DatasetId, GgnnWorkload),
    ThreeD(DatasetId, FlannWorkload, BvhnnWorkload),
    Btree(DatasetId, BtreeWorkload),
}

/// Result of a fault-tolerant suite build: the suite (holding every app ×
/// dataset whose three variants all simulated) plus the per-job dispositions
/// for the partial report.
#[derive(Debug)]
pub struct SuiteBuild {
    /// The suite; under `keep_going`, apps with any failed variant are
    /// dropped from [`Suite::runs`].
    pub suite: Suite,
    /// Per-simulation outcomes in submission order (report values already
    /// moved into the suite). Render with [`crate::runner::outcomes_table`].
    pub outcomes: Vec<JobOutcome<()>>,
}

impl SuiteBuild {
    /// `true` when every simulation produced a report.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(JobOutcome::is_ok)
    }
}

impl Suite {
    /// Builds every workload and simulates the three lowerings.
    ///
    /// This is the expensive entry point (tens of seconds at standard
    /// scale); use [`SuiteConfig::quick`] for smoke tests and
    /// [`SuiteConfig::jobs`] to fan the run matrix across worker threads.
    /// Results are bit-identical for every `jobs` value: construction and
    /// simulation are pure functions of the config, and the runner merges
    /// results in stable key order.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or any simulation fails —
    /// callers that need partial results use [`Suite::build_with_policy`].
    pub fn build(config: SuiteConfig) -> Self {
        match Self::build_with_policy(config, &FaultPolicy::default()) {
            Ok(build) => {
                if let Some(bad) = build.outcomes.iter().find(|o| !o.is_ok()) {
                    let detail = match &bad.result {
                        Err(e) => e.to_string(),
                        Ok(()) => unreachable!("failed outcome without an error"),
                    };
                    panic!("suite build failed at {}: {detail}", bad.key);
                }
                build.suite
            }
            Err(e) => panic!("suite build failed: {e}"),
        }
    }

    /// Fault-tolerant variant of [`Suite::build`]: the simulation matrix
    /// runs under [`crate::runner::run_jobs_ft`], so a panicking, failing,
    /// or timed-out simulation is isolated, retried per `policy`, and — when
    /// `policy.keep_going` is set — reported while the remaining jobs still
    /// run to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the GPU configuration fails
    /// validation (nothing is built or simulated). Per-job failures are
    /// *not* errors; they are reported in [`SuiteBuild::outcomes`].
    pub fn build_with_policy(
        config: SuiteConfig,
        policy: &FaultPolicy,
    ) -> Result<SuiteBuild, SimError> {
        config.gpu_config().validate()?;
        let gpu = Gpu::new(config.gpu_config());

        // Phase A: construct all workloads (validation included) in
        // parallel. Each job derives everything from `config` — no shared
        // RNG or other mutable state.
        let mut build_jobs = Vec::new();
        for id in DatasetId::HIGH_DIM {
            build_jobs.push(BuildJob::Ggnn(id));
        }
        for id in DatasetId::THREE_D {
            build_jobs.push(BuildJob::ThreeD(id));
        }
        for id in [DatasetId::BTree1m, DatasetId::BTree10k] {
            build_jobs.push(BuildJob::Btree(id));
        }
        let built =
            crate::runner::run_jobs(config.jobs, build_jobs, |_, job| build_one(&config, job));

        let mut ggnn = Vec::new();
        let mut flann = Vec::new();
        let mut bvhnn = Vec::new();
        let mut btree = Vec::new();
        for b in built {
            match b {
                Built::Ggnn(id, wl) => ggnn.push((id, wl)),
                Built::ThreeD(id, fw, bw) => {
                    flann.push((id, fw));
                    bvhnn.push((id, bw));
                }
                Built::Btree(id, wl) => btree.push((id, wl)),
            }
        }

        // Phase B: the simulation matrix — every (app × dataset × variant)
        // triple is one job with a stable key; reports come back in
        // submission order, so `runs` is identical for any worker count.
        let mut plan: Vec<(App, DatasetId, WlRef<'_>)> = Vec::new();
        for (id, wl) in &ggnn {
            plan.push((App::Ggnn, *id, WlRef::Ggnn(wl)));
        }
        for i in 0..flann.len() {
            plan.push((App::Flann, flann[i].0, WlRef::Flann(&flann[i].1)));
            plan.push((App::Bvhnn, bvhnn[i].0, WlRef::Bvhnn(&bvhnn[i].1)));
        }
        for (id, wl) in &btree {
            plan.push((App::Btree, *id, WlRef::Btree(wl)));
        }

        const VARIANTS: [(Variant, &str); 3] = [
            (Variant::Hsu, "hsu"),
            (Variant::Baseline, "base"),
            (Variant::BaselineStripped, "stripped"),
        ];
        let mut sim_jobs = Vec::new();
        for (app, id, wl) in &plan {
            let label = format!("{}{}", app.prefix(), hsu_datasets::spec(*id).abbr);
            for (variant, vname) in VARIANTS {
                let key = format!("{label}/{vname}");
                sim_jobs.push((key.clone(), (key, *wl, variant)));
            }
        }
        let outs = crate::runner::run_jobs_ft(
            config.jobs,
            policy,
            sim_jobs,
            |_, (key, wl, variant), limits| {
                let trace = wl.trace(*variant);
                crate::runner::timed_run(key.clone(), || gpu.run_guarded(&trace, limits))
            },
        );

        let mut runs = Vec::new();
        let mut records = Vec::new();
        let mut outcomes = Vec::new();
        let mut outs = outs.into_iter();
        for (app, id, _) in &plan {
            // One triple (hsu/base/stripped) per planned app × dataset; the
            // pool returns an outcome for every submitted job.
            let mut triple = Vec::with_capacity(3);
            for _ in 0..VARIANTS.len() {
                let Some(out) = outs.next() else {
                    unreachable!("pool returned an outcome per job");
                };
                triple.push(out);
            }
            let all_ok = triple.iter().all(JobOutcome::is_ok);
            let mut reports = Vec::with_capacity(VARIANTS.len());
            for o in triple {
                let result = match o.result {
                    Ok(v) => {
                        reports.push(v);
                        Ok(())
                    }
                    Err(e) => Err(e),
                };
                outcomes.push(JobOutcome {
                    key: o.key,
                    attempts: o.attempts,
                    status: o.status,
                    result,
                });
            }
            if all_ok {
                let mut reports = reports.into_iter();
                let (Some((hsu, r0)), Some((base, r1)), Some((stripped, r2))) =
                    (reports.next(), reports.next(), reports.next())
                else {
                    unreachable!("all-ok triple yields three reports");
                };
                let spec = hsu_datasets::spec(*id);
                runs.push(AppRun {
                    app: *app,
                    label: format!("{}{}", app.prefix(), spec.abbr),
                    dataset: *id,
                    hsu,
                    base,
                    stripped,
                });
                records.extend([r0, r1, r2]);
            }
        }
        drop(plan);

        Ok(SuiteBuild {
            suite: Suite {
                config,
                gpu,
                ggnn,
                flann,
                bvhnn,
                btree,
                runs,
                records,
            },
            outcomes,
        })
    }

    /// Runs for one application, in dataset order.
    pub fn runs_for(&self, app: App) -> impl Iterator<Item = &AppRun> + '_ {
        self.runs.iter().filter(move |r| r.app == app)
    }

    /// Geometric-mean HSU speedup for one application (the paper reports
    /// per-app averages in §VI-C).
    pub fn mean_speedup(&self, app: App) -> f64 {
        let speedups: Vec<f64> = self.runs_for(app).map(|r| r.speedup()).collect();
        geomean(&speedups)
    }
}

/// Geometric mean; 1.0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Executes one phase-A construction job. Pure function of the config: the
/// parallel build is deterministic because nothing here reads shared state.
fn build_one(config: &SuiteConfig, job: BuildJob) -> Built {
    match job {
        BuildJob::Ggnn(id) => {
            let spec = hsu_datasets::spec(id);
            let (points, queries) = ggnn_size(id);
            let dataset = Dataset::generate_scaled(id, config.seed, Some(config.scaled(points)));
            let Some(data) = dataset.points().cloned() else {
                panic!("GGNN dataset {id:?} is not a point dataset");
            };
            let Some(metric) = spec.metric else {
                panic!("ANN dataset {id:?} has no metric");
            };
            let params = GgnnParams {
                points: data.len(),
                dim: spec.dims,
                queries: config.scaled(queries).max(48).min(queries.max(48)),
                metric,
                k: 10,
                ef: 64,
                m: 16,
                seed: config.seed,
            };
            Built::Ggnn(id, GgnnWorkload::build_from_points(&params, &data))
        }
        BuildJob::ThreeD(id) => {
            let spec = hsu_datasets::spec(id);
            let n = config.scaled(spec.scaled_points.min(15_000));
            let dataset = Dataset::generate_scaled(id, config.seed, Some(n));
            let Some(data) = dataset.points().cloned() else {
                panic!("3-D dataset {id:?} is not a point dataset");
            };
            let queries = config.scaled(4096).max(2048);
            let fw = FlannWorkload::build_from_points(
                &FlannParams {
                    points: n,
                    queries,
                    k: 5,
                    checks: 16,
                    seed: config.seed,
                },
                &data,
            );
            let bw = BvhnnWorkload::build_from_points(
                &BvhnnParams {
                    points: n,
                    queries,
                    radius_scale: 1.5,
                    flavor: Default::default(),
                    seed: config.seed,
                },
                &data,
            );
            Built::ThreeD(id, fw, bw)
        }
        BuildJob::Btree(id) => {
            let spec = hsu_datasets::spec(id);
            let keys = config.scaled(spec.scaled_points);
            let wl = BtreeWorkload::build(&BtreeParams {
                keys,
                queries: config.scaled(8192).max(2048),
                branch: 256,
                seed: config.seed,
            });
            Built::Btree(id, wl)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[1.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "two suite builds are slow unoptimized; run with --release"
    )]
    fn parallel_build_matches_sequential() {
        let cfg = SuiteConfig {
            sms: 2,
            scale_divisor: 32,
            ..SuiteConfig::default()
        };
        let seq = Suite::build(cfg.clone());
        let par = Suite::build(cfg.with_jobs(8));
        assert_eq!(seq.runs.len(), par.runs.len());
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.hsu, b.hsu,
                "{} hsu report drifted under --jobs 8",
                a.label
            );
            assert_eq!(a.base, b.base, "{} base report drifted", a.label);
            assert_eq!(
                a.stripped, b.stripped,
                "{} stripped report drifted",
                a.label
            );
        }
        // Observability records keep stable keys and counters; only
        // wall-times may differ between the two builds.
        assert_eq!(seq.records.len(), par.records.len());
        for (ra, rb) in seq.records.iter().zip(&par.records) {
            assert_eq!(ra.key, rb.key);
            assert_eq!(ra.cycles, rb.cycles);
            assert_eq!(ra.peak_warp_buffer, rb.peak_warp_buffer);
        }
    }

    #[test]
    fn quick_suite_reproduces_paper_ordering() {
        let suite = Suite::build(SuiteConfig::quick());
        // 9 GGNN + 5 FLANN + 5 BVH-NN + 2 B+ = 21 app-dataset runs.
        assert_eq!(suite.runs.len(), 21);
        // Three observability records (hsu/base/stripped) per app run.
        assert_eq!(suite.records.len(), 63);
        // Every HSU run must beat its baseline (Fig. 9: all speedups > 1).
        for r in &suite.runs {
            assert!(
                r.speedup() > 0.95,
                "{} regressed: speedup {:.3}",
                r.label,
                r.speedup()
            );
        }
        // The paper's per-app ordering: BVH-NN > GGNN > FLANN > B+ on
        // average, with B+ the smallest.
        let bvh = suite.mean_speedup(App::Bvhnn);
        let btree = suite.mean_speedup(App::Btree);
        assert!(bvh > btree, "BVH-NN {bvh:.3} !> B+ {btree:.3}");
        // Offloadable fractions are sane.
        for r in &suite.runs {
            let f = r.offloadable();
            assert!((0.0..1.0).contains(&f), "{}: fraction {f}", r.label);
        }
    }
}
