//! One formatter per paper table/figure.
//!
//! Each function renders the rows/series the corresponding figure plots; the
//! `repro` binary prints them, and EXPERIMENTS.md records paper-vs-measured.

use std::fmt::Write as _;

use crate::suite::{geomean, App, Suite};
use hsu_core::pipeline::OperatingMode;
use hsu_core::HsuConfig;
use hsu_datasets::{catalog, DatasetId};
use hsu_kernels::rtindex::{RtIndexParams, RtIndexWorkload};
use hsu_kernels::Variant;
use hsu_rtl::area::{AreaBreakdown, DatapathKind};
use hsu_rtl::power::mode_power_mw;
use hsu_sim::config::{GpuConfig, SimMode};
use hsu_sim::{Gpu, SimError};

/// Table II: the dataset inventory.
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>5} {:>12} {:>12} {:>6}",
        "Dataset", "Abbr", "Dim", "PaperPts", "ScaledPts", "Dist"
    );
    for s in catalog() {
        let dist = match s.metric {
            Some(hsu_geometry::point::Metric::Angular) => "A",
            Some(hsu_geometry::point::Metric::Euclidean) => "E",
            None => "N/A",
        };
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>5} {:>12} {:>12} {:>6}",
            format!("{:?}", s.id),
            s.abbr,
            s.dims,
            s.paper_points,
            s.scaled_points,
            dist
        );
    }
    out
}

/// Table III: the simulator configuration actually used.
pub fn table3(sms: usize) -> String {
    let cfg = GpuConfig {
        num_sms: sms,
        ..GpuConfig::small()
    };
    let mut out = String::new();
    let paper = GpuConfig::volta_v100();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12}",
        "Parameter", "Paper", "This run"
    );
    let mut row = |name: &str, paper: String, ours: String| {
        let _ = writeln!(out, "{name:<28} {paper:>12} {ours:>12}");
    };
    row("# SMs", paper.num_sms.to_string(), cfg.num_sms.to_string());
    row(
        "Sub-cores / SM",
        paper.sub_cores.to_string(),
        cfg.sub_cores.to_string(),
    );
    row("Warp scheduler", "GTO".into(), "GTO".into());
    row(
        "Max warps / SM",
        paper.max_warps_per_sm.to_string(),
        cfg.max_warps_per_sm.to_string(),
    );
    row("RT units / SM", "1".into(), "1".into());
    row(
        "Warp buffer size",
        paper.hsu.warp_buffer_entries.to_string(),
        cfg.hsu.warp_buffer_entries.to_string(),
    );
    row(
        "L1/shared per SM",
        format!("{} KB", paper.l1_bytes / 1024),
        format!("{} KB", cfg.l1_bytes / 1024),
    );
    row(
        "L2 cache",
        format!("{}-way {} MB", paper.l2_ways, paper.l2_bytes >> 20),
        format!("{}-way {} MB", cfg.l2_ways, cfg.l2_bytes >> 20),
    );
    row(
        "Line size",
        format!("{} B", paper.line_bytes),
        format!("{} B", cfg.line_bytes),
    );
    row(
        "HBM channels",
        paper.dram_channels.to_string(),
        cfg.dram_channels.to_string(),
    );
    out
}

/// Fig. 7: proportion of baseline cycles spent on HSU-able operations.
pub fn fig7(suite: &Suite) -> String {
    let mut out = String::from("Fig.7  offloadable share of non-RT baseline cycles\n");
    let _ = writeln!(out, "{:<10} {:>10}", "workload", "share");
    for r in &suite.runs {
        let _ = writeln!(out, "{:<10} {:>9.1}%", r.label, r.offloadable() * 100.0);
    }
    for app in [App::Ggnn, App::Flann, App::Bvhnn, App::Btree] {
        let vals: Vec<f64> = suite.runs_for(app).map(|r| r.offloadable()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        let _ = writeln!(out, "{:<10} {:>9.1}%  (mean)", app.name(), mean * 100.0);
    }
    out
}

/// Fig. 8: roofline — HSU ops/cycle vs ops per L2 line, per workload.
pub fn fig8(suite: &Suite) -> String {
    let mut out = String::from("Fig.8  roofline of the HSU (compute bound = 1 op/cycle/unit)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>12}",
        "workload", "ops/L2-line", "ops/cycle"
    );
    for r in &suite.runs {
        let _ = writeln!(
            out,
            "{:<10} {:>14.3} {:>12.4}",
            r.label,
            r.hsu.operational_intensity(),
            r.hsu.hsu_ops_per_cycle()
        );
    }
    out
}

/// Fig. 9: the headline HSU speedups over the non-RT baseline.
pub fn fig9(suite: &Suite) -> String {
    let mut out = String::from("Fig.9  speedup with HSU over non-RT baseline\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>12}",
        "workload", "speedup", "hsu cycles", "base cycles"
    );
    for r in &suite.runs {
        let _ = writeln!(
            out,
            "{:<10} {:>9.1}% {:>12} {:>12}",
            r.label,
            (r.speedup() - 1.0) * 100.0,
            r.hsu.cycles,
            r.base.cycles
        );
    }
    let _ = writeln!(
        out,
        "-- per-app mean (paper: GGNN +24.8%, FLANN +16.4%, BVH-NN +33.9%, B+ +13.5%)"
    );
    for app in [App::Ggnn, App::Flann, App::Bvhnn, App::Btree] {
        let _ = writeln!(
            out,
            "{:<10} {:>9.1}%",
            app.name(),
            (suite.mean_speedup(app) - 1.0) * 100.0
        );
    }
    out
}

/// Fig. 10: datapath-width sensitivity on GGNN (Euclid width 4/8/16/32;
/// angular is half).
///
/// The 9 × 4 (dataset × width) sweep grid runs on the work-stealing pool
/// ([`crate::runner`], `suite.config.jobs` workers); the table is formatted
/// from results merged in grid order, so output is identical for any worker
/// count.
///
/// # Errors
///
/// Propagates the first [`SimError`] any sweep cell hits.
pub fn fig10(suite: &Suite) -> Result<String, SimError> {
    let widths = [4usize, 8, 16, 32];
    let ggnn: Vec<&crate::suite::AppTraces> = suite.traces_for(App::Ggnn).collect();
    let mut jobs = Vec::new();
    for at in &ggnn {
        for w in widths {
            jobs.push((*at, w));
        }
    }
    let cycles = crate::runner::run_jobs(suite.config.jobs, jobs, |_, (at, w)| {
        let cfg = GpuConfig {
            hsu: HsuConfig::default().with_euclid_width(w),
            ..suite.config.gpu_config()
        };
        Gpu::new(cfg).run(&at.hsu).map(|r| r.cycles)
    });
    let cycles: Vec<u64> = cycles.into_iter().collect::<Result<_, _>>()?;

    let mut out = String::from("Fig.10 GGNN speedup vs datapath width (over non-RT baseline)\n");
    let _ = write!(out, "{:<10}", "dataset");
    for w in widths {
        let _ = write!(out, " {:>8}", format!("w={w}"));
    }
    let _ = writeln!(out);
    let mut cycles = cycles.into_iter();
    for at in &ggnn {
        let id = at.dataset;
        let Some(base) = suite.runs_for(App::Ggnn).find(|r| r.dataset == id) else {
            panic!("GGNN run for {id:?} missing from the suite");
        };
        let _ = write!(out, "{:<10}", base.label);
        for _ in widths {
            let Some(hsu_cycles) = cycles.next() else {
                unreachable!("one sweep cell per dataset × width");
            };
            let speedup = base.base.cycles as f64 / hsu_cycles as f64;
            let _ = write!(out, " {:>7.1}%", (speedup - 1.0) * 100.0);
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

/// Fig. 11: warp-buffer-size sensitivity for GGNN (a), BVH-NN (b), FLANN (c).
///
/// The (9 + 5 + 5) × 5 (dataset × buffer-size) grid runs on the
/// work-stealing pool, merged in grid order for determinism.
///
/// # Errors
///
/// Propagates the first [`SimError`] any sweep cell hits.
pub fn fig11(suite: &Suite) -> Result<String, SimError> {
    let sizes = [1usize, 2, 4, 8, 16];
    let panels: [(&str, App); 3] = [
        ("(a) GGNN", App::Ggnn),
        ("(b) BVH-NN", App::Bvhnn),
        ("(c) FLANN", App::Flann),
    ];

    let hsu_trace = |app: App, dataset| {
        let Some(at) = suite.traces_for(app).find(|t| t.dataset == dataset) else {
            panic!("{app:?} traces for {dataset:?} not retained");
        };
        &at.hsu
    };
    let mut jobs = Vec::new();
    for (_, app) in panels {
        for base in suite.runs_for(app) {
            for s in sizes {
                jobs.push((app, base.dataset, s));
            }
        }
    }
    let cycles = crate::runner::run_jobs(suite.config.jobs, jobs, |_, (app, dataset, s)| {
        let cfg = GpuConfig {
            hsu: HsuConfig::default().with_warp_buffer(s),
            ..suite.config.gpu_config()
        };
        Gpu::new(cfg).run(hsu_trace(app, dataset)).map(|r| r.cycles)
    });
    let cycles: Vec<u64> = cycles.into_iter().collect::<Result<_, _>>()?;

    let mut out = String::from("Fig.11 speedup vs warp buffer size (over non-RT baseline)\n");
    let mut cycles = cycles.into_iter();
    for (title, app) in panels {
        let _ = writeln!(out, "{title}");
        let _ = write!(out, "{:<10}", "dataset");
        for s in sizes {
            let _ = write!(out, " {:>8}", format!("wb={s}"));
        }
        let _ = writeln!(out);
        for base in suite.runs_for(app) {
            let _ = write!(out, "{:<10}", base.label);
            for _ in sizes {
                let Some(hsu_cycles) = cycles.next() else {
                    unreachable!("one sweep cell per dataset × size");
                };
                let speedup = base.base.cycles as f64 / hsu_cycles as f64;
                let _ = write!(out, " {:>7.1}%", (speedup - 1.0) * 100.0);
            }
            let _ = writeln!(out);
        }
    }
    Ok(out)
}

/// Fig. 12: HSU L1D accesses normalized to the non-RT baseline.
pub fn fig12(suite: &Suite) -> String {
    let mut out = String::from("Fig.12 L1D accesses, HSU / baseline\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>12}",
        "workload", "ratio", "hsu", "base"
    );
    for r in &suite.runs {
        let ratio = r.hsu.l1_accesses() as f64 / r.base.l1_accesses().max(1) as f64;
        let _ = writeln!(
            out,
            "{:<10} {:>10.3} {:>12} {:>12}",
            r.label,
            ratio,
            r.hsu.l1_accesses(),
            r.base.l1_accesses()
        );
    }
    out
}

/// Fig. 13: L1 data-cache miss rates (MSHR merges count as hits).
pub fn fig13(suite: &Suite) -> String {
    let mut out = String::from("Fig.13 L1D miss rate\n");
    let _ = writeln!(out, "{:<10} {:>10} {:>10}", "workload", "hsu", "base");
    for r in &suite.runs {
        let _ = writeln!(
            out,
            "{:<10} {:>9.1}% {:>9.1}%",
            r.label,
            r.hsu.l1_miss_rate() * 100.0,
            r.base.l1_miss_rate() * 100.0
        );
    }
    out
}

/// Fig. 14: mean DRAM row-access locality under FR-FCFS.
pub fn fig14(suite: &Suite) -> String {
    let mut out = String::from("Fig.14 mean DRAM row locality (accesses per activation)\n");
    let _ = writeln!(out, "{:<10} {:>10} {:>10}", "workload", "hsu", "base");
    for r in &suite.runs {
        let _ = writeln!(
            out,
            "{:<10} {:>10.2} {:>10.2}",
            r.label,
            r.hsu.row_locality(),
            r.base.row_locality()
        );
    }
    out
}

/// Fig. 15: datapath area by resource class, HSU normalized to baseline.
pub fn fig15() -> String {
    let base = AreaBreakdown::of(DatapathKind::BaselineRt);
    let hsu = AreaBreakdown::of(DatapathKind::Hsu);
    let mut out = String::from("Fig.15 HSU datapath area normalized to baseline RT datapath\n");
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>8}",
        "class", "base um^2", "hsu um^2", "ratio"
    );
    for ((kind, b), (_, h)) in base.classes.iter().zip(&hsu.classes) {
        let _ = writeln!(
            out,
            "{:<12} {:>12.0} {:>12.0} {:>8.2}",
            kind.label(),
            b,
            h,
            h / b.max(f64::MIN_POSITIVE)
        );
    }
    let _ = writeln!(
        out,
        "{:<12} {:>12.0} {:>12.0} {:>8.2}  (paper: 1.37)",
        "TOTAL",
        base.total(),
        hsu.total(),
        hsu.total() / base.total()
    );
    out
}

/// Fig. 16: per-operating-mode dynamic power.
pub fn fig16() -> String {
    let mut out = String::from("Fig.16 dynamic power per operating mode (mW @ 1 GHz)\n");
    let _ = writeln!(out, "{:<10} {:>10} {:>10}", "mode", "baseline", "hsu");
    for mode in OperatingMode::ALL {
        let base = if mode.is_extension() {
            "-".to_string()
        } else {
            format!("{:.1}", mode_power_mw(mode, DatapathKind::BaselineRt))
        };
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10.1}",
            mode.label(),
            base,
            mode_power_mw(mode, DatapathKind::Hsu)
        );
    }
    let _ = writeln!(
        out,
        "(paper: euclid 79, angular 67; HSU adds ~10/8 mW to box/tri)"
    );
    out
}

/// §VI-G: the RTIndeX case study — native point keys vs triangle-encoded
/// keys, both with RT hardware (paper: +36.6 % and 9:1 key-store memory).
///
/// # Errors
///
/// Propagates any [`SimError`] from the two key-lookup simulations.
pub fn rtindex(sms: usize, scale_divisor: usize, sim_mode: SimMode) -> Result<String, SimError> {
    let params = RtIndexParams {
        keys: (16_384 / scale_divisor).max(512),
        lookups: (8_192 / scale_divisor).max(256),
        seed: 11,
    };
    let wl = RtIndexWorkload::build(&params);
    let gpu = Gpu::new(GpuConfig {
        num_sms: sms,
        sim_mode,
        ..GpuConfig::small()
    });
    let point = gpu.run(&wl.trace(Variant::Hsu))?;
    let triangle = gpu.run(&wl.trace(Variant::Baseline))?;
    let speedup = triangle.cycles as f64 / point.cycles as f64;
    let mut out =
        String::from("RTIndeX (sec.VI-G): key lookups, HSU point keys vs RT triangle keys\n");
    let _ = writeln!(
        out,
        "keys {}  lookups {}  hit-rate {:.3}",
        params.keys, params.lookups, wl.hit_rate
    );
    let _ = writeln!(out, "triangle-key cycles {:>10}", triangle.cycles);
    let _ = writeln!(out, "point-key cycles    {:>10}", point.cycles);
    let _ = writeln!(
        out,
        "speedup             {:>9.1}%  (paper: +36.6%)",
        (speedup - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "key store           {:>10} B vs {} B ({}x, paper: 9:1 unpadded)",
        wl.key_store_bytes(params.keys, Variant::Baseline),
        wl.key_store_bytes(params.keys, Variant::Hsu),
        wl.key_store_bytes(params.keys, Variant::Baseline)
            / wl.key_store_bytes(params.keys, Variant::Hsu)
    );
    Ok(out)
}

/// Design-space ablations the paper calls out but does not evaluate:
/// BVH4 and SAH hierarchies for BVH-NN (§VI-E) and private/bypass RT-unit
/// caches (§VI-I). Both ablation grids run on the work-stealing pool with
/// `jobs` workers; rows are merged in grid order.
///
/// # Errors
///
/// Propagates the first [`SimError`] any grid cell hits.
pub fn ablation(
    sms: usize,
    scale_divisor: usize,
    jobs: usize,
    sim_mode: SimMode,
) -> Result<String, SimError> {
    use hsu_datasets::Dataset;
    use hsu_kernels::bvhnn::{BvhFlavor, BvhnnParams, BvhnnWorkload};
    use hsu_kernels::ggnn::{GgnnParams, GgnnWorkload};
    use hsu_sim::config::RtCachePolicy;

    let mut out = String::from("Ablations (paper design-space notes)\n");
    let gpu_cfg = GpuConfig {
        num_sms: sms,
        sim_mode,
        ..GpuConfig::small()
    };

    // (a) BVH flavor for BVH-NN on the dragon scan. One job per flavor
    // (each builds its own hierarchy over the shared point cloud); the
    // BVH2 job also simulates the non-RT baseline all rows compare against.
    let dragon = Dataset::generate_scaled(
        DatasetId::Dragon,
        7,
        Some((15_000 / scale_divisor).max(1_000)),
    );
    let Some(data) = dragon.points().cloned() else {
        panic!("Dragon is not a point dataset");
    };
    let queries = (4096 / scale_divisor).max(512);
    let _ = writeln!(out, "(a) BVH-NN hierarchy flavor (sec.VI-E), dataset DRG");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>10}",
        "flavor", "hsu cycles", "speedup"
    );
    let flavor_jobs = vec![
        ("BVH2", BvhFlavor::Lbvh2, true),
        ("BVH4", BvhFlavor::Lbvh4, false),
        ("SAH2", BvhFlavor::Sah2, false),
    ];
    let flavor_rows = crate::runner::run_jobs(jobs, flavor_jobs, |_, (name, flavor, with_base)| {
        let wl = BvhnnWorkload::build_from_points(
            &BvhnnParams {
                points: data.len(),
                queries,
                radius_scale: 1.5,
                flavor,
                seed: 7,
            },
            &data,
        );
        let gpu = Gpu::new(gpu_cfg.clone());
        let hsu_cycles = gpu.run(&wl.trace(Variant::Hsu))?.cycles;
        let base_cycles = if with_base {
            Some(gpu.run(&wl.trace(Variant::Baseline))?.cycles)
        } else {
            None
        };
        Ok((name, hsu_cycles, base_cycles))
    });
    let flavor_rows: Vec<(&str, u64, Option<u64>)> =
        flavor_rows.into_iter().collect::<Result<_, SimError>>()?;
    let Some(base_cycles) = flavor_rows[0].2 else {
        unreachable!("BVH2 job carries the baseline");
    };
    for (name, hsu_cycles, _) in &flavor_rows {
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>9.1}%",
            name,
            hsu_cycles,
            (base_cycles as f64 / *hsu_cycles as f64 - 1.0) * 100.0
        );
    }

    // (b) RT-unit cache policy on GGNN mnist (the L1/MSHR-contention case).
    let spec = hsu_datasets::spec(DatasetId::Mnist);
    let mnist =
        Dataset::generate_scaled(DatasetId::Mnist, 7, Some((2_000 / scale_divisor).max(400)));
    let Some(data) = mnist.points().cloned() else {
        panic!("MNIST is not a point dataset");
    };
    let Some(metric) = spec.metric else {
        panic!("MNIST has no metric");
    };
    let wl = GgnnWorkload::build_from_points(
        &GgnnParams {
            points: data.len(),
            dim: spec.dims,
            queries: (128 / scale_divisor).max(32),
            metric,
            k: 10,
            ef: 64,
            m: 16,
            seed: 7,
        },
        &data,
    );
    let _ = writeln!(out, "(b) RT-unit cache policy (sec.VI-I), GGNN on MNT");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12}",
        "policy", "hsu cycles", "L1 miss"
    );
    let policy_jobs = vec![
        ("shared-L1", RtCachePolicy::SharedWithLsu),
        ("private-32KB", RtCachePolicy::Private { bytes: 32 * 1024 }),
        ("bypass-L1", RtCachePolicy::Bypass),
    ];
    let policy_rows = crate::runner::run_jobs(jobs, policy_jobs, |_, (name, policy)| {
        let gpu = Gpu::new(GpuConfig {
            rt_cache: policy,
            ..gpu_cfg.clone()
        });
        let r = gpu.run(&wl.trace(Variant::Hsu))?;
        Ok((name, r.cycles, r.l1_miss_rate()))
    });
    let policy_rows: Vec<(&str, u64, f64)> =
        policy_rows.into_iter().collect::<Result<_, SimError>>()?;
    for (name, cycles, miss) in policy_rows {
        let _ = writeln!(out, "{:<16} {:>12} {:>11.1}%", name, cycles, miss * 100.0);
    }
    Ok(out)
}

/// Per-app summary line used by `repro all`.
pub fn summary(suite: &Suite) -> String {
    let mut out = String::from("== summary: per-app HSU speedups ==\n");
    for app in [App::Ggnn, App::Flann, App::Bvhnn, App::Btree] {
        let speedups: Vec<f64> = suite.runs_for(app).map(|r| r.speedup()).collect();
        let _ = writeln!(
            out,
            "{:<8} geomean {:>6.1}%   min {:>6.1}%   max {:>6.1}%",
            app.name(),
            (geomean(&speedups) - 1.0) * 100.0,
            (speedups.iter().cloned().fold(f64::INFINITY, f64::min) - 1.0) * 100.0,
            (speedups.iter().cloned().fold(0.0, f64::max) - 1.0) * 100.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_figures_render() {
        let t2 = table2();
        assert!(t2.contains("D1B") && t2.contains("B+10K"));
        let t3 = table3(8);
        assert!(t3.contains("GTO") && t3.contains("128 B"));
        let f15 = fig15();
        assert!(f15.contains("TOTAL"));
        let f16 = fig16();
        assert!(f16.contains("euclid"));
    }

    #[test]
    fn rtindex_speedup_positive() {
        let out = rtindex(2, 16, SimMode::default()).unwrap();
        assert!(out.contains("speedup"));
        // Extract the speedup percentage and check the sign.
        let line = out.lines().find(|l| l.contains("speedup")).unwrap();
        let pct: f64 = line
            .split_whitespace()
            .find(|t| t.ends_with('%'))
            .and_then(|t| t.trim_end_matches('%').parse().ok())
            .expect("speedup value");
        assert!(pct > 0.0, "point keys must win: {pct}%");
    }
}
