//! Content-keyed `.hsar` archive cache for the suite's build phase.
//!
//! The suite's phase A (dataset generation → index construction → trace
//! lowering) dominates a cold run's wall-clock. [`ArchiveCache`] keys every
//! artifact by a string that embeds the codec version plus every parameter
//! the artifact's bytes depend on (generator seed, scaled sizes, index
//! parameters — **never** machine knobs like SM count, `--jobs`, or the
//! simulation mode), hashes it with [`hsu_archive::key_hash`], and stores
//! the artifact in `<dir>/<stem>-<hash>.hsar`. A warm re-run with the same
//! key loads bytes that decode to the identical artifact, so suite stdout
//! is byte-for-byte the same as a cold run.
//!
//! The cache is strictly best-effort and self-healing: a missing, corrupt,
//! truncated, or key-mismatched archive is treated as a miss (the typed
//! [`hsu_archive::ArchiveError`] is reported on stderr), the artifact is
//! rebuilt from scratch, and the bad file is overwritten atomically. A
//! failed *store* never fails the run either — it only costs the next run
//! its warm start.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use hsu_archive::{key_hash, kind, ArchiveWriter, FileArchive};
use hsu_btree::BPlusTree;
use hsu_bvh::Bvh2;
use hsu_datasets::{Dataset, DatasetId};
use hsu_graph::HnswGraph;
use hsu_kdtree::KdTree;
use hsu_sim::trace::KernelTrace;

/// Best-effort, content-keyed archive store shared by the suite's build
/// jobs. `None` for the directory disables every method (all loads miss,
/// all stores are no-ops), which is the default cold path.
#[derive(Debug)]
pub struct ArchiveCache {
    dir: Option<PathBuf>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ArchiveCache {
    /// A cache rooted at `dir` (created if missing), or a disabled cache
    /// for `None`. An unwritable directory disables the cache with a
    /// warning rather than failing the run.
    pub fn new(dir: Option<PathBuf>) -> Self {
        let dir = dir.and_then(|d| match std::fs::create_dir_all(&d) {
            Ok(()) => Some(d),
            Err(e) => {
                eprintln!(
                    "warning: archive cache disabled: creating {}: {e}",
                    d.display()
                );
                None
            }
        });
        ArchiveCache {
            dir,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// A cache that never hits and never stores.
    pub fn disabled() -> Self {
        Self::new(None)
    }

    /// Whether a directory is attached.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Successful loads so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Failed loads (including every load while disabled).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// The file a `(stem, key)` pair maps to: `<dir>/<stem>-<hash16>.hsar`.
    /// The stem keeps the directory human-readable; the key hash carries
    /// the actual identity.
    pub fn path_for(&self, stem: &str, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{stem}-{:016x}.hsar", key_hash(key))))
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn report_load<T, E: std::fmt::Display>(&self, path: &Path, result: Result<T, E>) -> Option<T> {
        match result {
            Ok(v) => {
                self.hit();
                Some(v)
            }
            Err(e) => {
                // A plain missing file is the normal cold case — stay quiet.
                if path.exists() {
                    eprintln!("warning: archive cache: rebuilding {}: {e}", path.display());
                }
                self.miss();
                None
            }
        }
    }

    fn report_store<E: std::fmt::Display>(path: &Path, result: Result<(), E>) {
        if let Err(e) = result {
            eprintln!(
                "warning: archive cache: writing {} failed (continuing uncached): {e}",
                path.display()
            );
        }
    }

    /// Loads the named traces from the trace archive for `(stem, key)`.
    pub fn load_traces(&self, stem: &str, key: &str, names: &[&str]) -> Option<Vec<KernelTrace>> {
        let path = self.path_for(stem, key)?;
        self.report_load(
            &path,
            hsu_sim::archive_io::read_trace_archive(&path, key, names),
        )
    }

    /// Stores named traces under `(stem, key)`.
    pub fn store_traces(&self, stem: &str, key: &str, traces: &[(&str, &KernelTrace)]) {
        let Some(path) = self.path_for(stem, key) else {
            return;
        };
        Self::report_store(
            &path,
            hsu_sim::archive_io::write_trace_archive(&path, key, traces),
        );
    }

    /// Loads a generated dataset.
    pub fn load_dataset(&self, stem: &str, key: &str, id: DatasetId) -> Option<Dataset> {
        let path = self.path_for(stem, key)?;
        self.report_load(
            &path,
            hsu_datasets::archive_io::read_dataset_archive(&path, key, id),
        )
    }

    /// Stores a generated dataset.
    pub fn store_dataset(&self, stem: &str, key: &str, dataset: &Dataset) {
        let Some(path) = self.path_for(stem, key) else {
            return;
        };
        Self::report_store(
            &path,
            hsu_datasets::archive_io::write_dataset_archive(&path, key, dataset),
        );
    }

    /// Loads an HNSW graph index.
    pub fn load_graph(&self, stem: &str, key: &str) -> Option<HnswGraph> {
        self.load_index(stem, key, kind::GRAPH, "graph", |b| {
            hsu_graph::archive_io::graph_from_chunk(b, "index/graph")
        })
    }

    /// Stores an HNSW graph index.
    pub fn store_graph(&self, stem: &str, key: &str, graph: &HnswGraph) {
        self.store_index(stem, key, kind::GRAPH, "graph", || {
            hsu_graph::archive_io::graph_to_chunk(graph)
        });
    }

    /// Loads a k-d tree index.
    pub fn load_kdtree(&self, stem: &str, key: &str) -> Option<KdTree> {
        self.load_index(stem, key, kind::KDTREE, "kdtree", |b| {
            hsu_kdtree::archive_io::kdtree_from_chunk(b, "index/kdtree")
        })
    }

    /// Stores a k-d tree index.
    pub fn store_kdtree(&self, stem: &str, key: &str, tree: &KdTree) {
        self.store_index(stem, key, kind::KDTREE, "kdtree", || {
            hsu_kdtree::archive_io::kdtree_to_chunk(tree)
        });
    }

    /// Loads a BVH2 index plus the search radius planned with it (stored as
    /// a `SCALAR` side chunk so the planner's O(n²) median pass is skipped
    /// on warm runs too).
    pub fn load_bvh(&self, stem: &str, key: &str) -> Option<(Bvh2, f32)> {
        let path = self.path_for(stem, key)?;
        let result = (|| {
            let mut archive = FileArchive::open(&path)?;
            archive.expect_key(key)?;
            let bytes = archive.read("index/bvh2", kind::BVH2)?;
            let bvh = hsu_bvh::archive_io::bvh2_from_chunk(&bytes, "index/bvh2")?;
            let rbytes = archive.read("index/radius", kind::SCALAR)?;
            let mut c = hsu_archive::payload::Cursor::new(&rbytes, "index/radius");
            let radius = c.f32()?;
            c.finish()?;
            Ok::<_, hsu_archive::ArchiveError>((bvh, radius))
        })();
        self.report_load(&path, result)
    }

    /// Stores a BVH2 index plus its planned radius.
    pub fn store_bvh(&self, stem: &str, key: &str, bvh: &Bvh2, radius: f32) {
        let Some(path) = self.path_for(stem, key) else {
            return;
        };
        let mut w = ArchiveWriter::new();
        w.set_key(key);
        w.begin_group("index");
        w.add_chunk("bvh2", kind::BVH2, &hsu_bvh::archive_io::bvh2_to_chunk(bvh));
        let mut rbytes = Vec::new();
        hsu_archive::payload::put_f32(&mut rbytes, radius);
        w.add_chunk("radius", kind::SCALAR, &rbytes);
        w.end_group();
        Self::report_store(&path, w.finish_to_file(&path));
    }

    /// Loads a B+-tree index.
    pub fn load_btree(&self, stem: &str, key: &str) -> Option<BPlusTree> {
        self.load_index(stem, key, kind::BTREE, "btree", |b| {
            hsu_btree::archive_io::btree_from_chunk(b, "index/btree")
        })
    }

    /// Stores a B+-tree index.
    pub fn store_btree(&self, stem: &str, key: &str, tree: &BPlusTree) {
        self.store_index(stem, key, kind::BTREE, "btree", || {
            hsu_btree::archive_io::btree_to_chunk(tree)
        });
    }

    /// Shared single-chunk index load: open, check key, read
    /// `index/<name>`, decode.
    fn load_index<T>(
        &self,
        stem: &str,
        key: &str,
        chunk_kind: u32,
        name: &str,
        decode: impl FnOnce(&[u8]) -> Result<T, hsu_archive::ArchiveError>,
    ) -> Option<T> {
        let path = self.path_for(stem, key)?;
        let result = (|| {
            let mut archive = FileArchive::open(&path)?;
            archive.expect_key(key)?;
            let bytes = archive.read(&format!("index/{name}"), chunk_kind)?;
            decode(&bytes)
        })();
        self.report_load(&path, result)
    }

    /// Shared single-chunk index store.
    fn store_index(
        &self,
        stem: &str,
        key: &str,
        chunk_kind: u32,
        name: &str,
        encode: impl FnOnce() -> Vec<u8>,
    ) {
        let Some(path) = self.path_for(stem, key) else {
            return;
        };
        let mut w = ArchiveWriter::new();
        w.set_key(key);
        w.begin_group("index");
        w.add_chunk(name, chunk_kind, &encode());
        w.end_group();
        Self::report_store(&path, w.finish_to_file(&path));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hsu-cache-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = ArchiveCache::disabled();
        assert!(!cache.enabled());
        assert!(cache.path_for("x", "k").is_none());
        assert!(cache.load_btree("x", "k").is_none());
        // Loads while disabled don't even count as misses (no path).
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn btree_round_trip_and_self_heal() {
        let dir = tmp("btree");
        let cache = ArchiveCache::new(Some(dir.clone()));
        let tree = BPlusTree::bulk_build((0..500u32).map(|k| (k, u64::from(k))).collect(), 8);
        assert!(cache.load_btree("bt", "key-1").is_none());
        cache.store_btree("bt", "key-1", &tree);
        let restored = cache.load_btree("bt", "key-1").expect("warm hit");
        assert_eq!(restored.len(), tree.len());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);

        // Corrupt the file: the load reports a miss and the caller rebuilds.
        let path = cache.path_for("bt", "key-1").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load_btree("bt", "key-1").is_none());
        // Different key, same stem -> different file, still a miss.
        assert!(cache.load_btree("bt", "key-2").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bvh_round_trip_keeps_radius() {
        use hsu_bvh::{LbvhBuilder, PointPrimitive};
        use hsu_geometry::Vec3;
        let dir = tmp("bvh");
        let cache = ArchiveCache::new(Some(dir.clone()));
        let prims: Vec<PointPrimitive> = (0..64)
            .map(|i| PointPrimitive::new(i, Vec3::new(i as f32, 0.5, -1.0), 0.25))
            .collect();
        let bvh = LbvhBuilder::default().build(&prims);
        cache.store_bvh("bvh", "k", &bvh, 0.75);
        let (restored, radius) = cache.load_bvh("bvh", "k").expect("warm hit");
        assert_eq!(radius, 0.75);
        assert_eq!(
            hsu_bvh::archive_io::bvh2_to_chunk(&restored),
            hsu_bvh::archive_io::bvh2_to_chunk(&bvh)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
