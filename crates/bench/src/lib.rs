//! The figure-regeneration suite for the HSU reproduction.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! regeneration path here, driven by the `repro` binary:
//!
//! | paper item | function | `repro` subcommand |
//! |---|---|---|
//! | Table II | [`figures::table2`] | `table2` |
//! | Table III | [`figures::table3`] | `table3` |
//! | Fig. 7 | [`figures::fig7`] | `fig7` |
//! | Fig. 8 | [`figures::fig8`] | `fig8` |
//! | Fig. 9 | [`figures::fig9`] | `fig9` |
//! | Fig. 10 | [`figures::fig10`] | `fig10` |
//! | Fig. 11 | [`figures::fig11`] | `fig11` |
//! | Fig. 12 | [`figures::fig12`] | `fig12` |
//! | Fig. 13 | [`figures::fig13`] | `fig13` |
//! | Fig. 14 | [`figures::fig14`] | `fig14` |
//! | Fig. 15 | [`figures::fig15`] | `fig15` |
//! | Fig. 16 | [`figures::fig16`] | `fig16` |
//! | §VI-G RTIndeX | [`figures::rtindex`] | `rtindex` |
//!
//! The [`suite::Suite`] builds every workload once (functional execution +
//! validation), simulates the three lowerings on the standard machine, and
//! caches the reports; figure functions then format different projections of
//! the same runs, exactly as the paper derives Figs. 7–14 from one set of
//! simulations.
//!
//! # Failure semantics
//!
//! Simulation jobs run on a fault-tolerant work-stealing pool
//! ([`runner::run_jobs_ft`]): panics are isolated per job, each attempt can
//! carry a wall-clock watchdog, and failed or timed-out jobs are retried
//! once with backoff. [`suite::Suite::build_with_policy`] exposes the
//! per-job outcomes so callers (the `repro` binary's `--keep-going` and
//! `--job-timeout` flags) can report partial results instead of aborting.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod figures;
pub mod runner;
pub mod suite;
pub mod trajectory;

pub use cache::ArchiveCache;
pub use runner::{
    outcomes_table, run_jobs, run_jobs_ft, FaultPolicy, JobError, JobOutcome, JobStatus, RunRecord,
};
pub use suite::{AppTraces, Suite, SuiteBuild, SuiteConfig};
