//! Work-stealing parallel execution for the simulation suite.
//!
//! The run matrix (application × dataset × lowering variant × GPU
//! configuration) is embarrassingly parallel: every simulation is a pure
//! function of its trace and config. This module fans those jobs across a
//! small pool of scoped worker threads, using only `std` (no external
//! dependencies):
//!
//! * each worker owns a deque of jobs; it pops from the back of its own
//!   deque (LIFO, cache-warm) and **steals from the front** of a sibling's
//!   deque when its own runs dry (FIFO, oldest-first — the classic
//!   Arora/Blumofe/Plays split),
//! * every job carries a **stable key** (its submission index); results are
//!   merged in key order, never completion order, so output is
//!   byte-identical for any worker count,
//! * jobs never share mutable state; anything random derives a private seed
//!   via [`job_seed`] from the suite seed and the job's stable key.
//!
//! Observability: heavyweight entry points wrap each simulation in a
//! [`RunRecord`] (wall-time, simulated cycles, simulation throughput, peak
//! warp-buffer occupancy) and the suite prints them with [`records_table`].
//! Records go to stderr so stdout stays deterministic across `--jobs`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hsu_sim::SimReport;

/// A sensible default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives an independent RNG seed for one job from the suite seed and the
/// job's stable key, by FNV-1a hashing the key into a SplitMix64-style mix.
/// Deterministic, order-free, and collision-resistant enough that no two
/// suite jobs share a stream.
pub fn job_seed(base_seed: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3); // FNV prime
    }
    let mut z = base_seed ^ h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs every job on a pool of `workers` scoped threads and returns the
/// results **in submission order** regardless of completion order.
///
/// The closure receives `(stable_index, job)`; the index is the job's key
/// and is safe to fold into [`job_seed`]. With `workers <= 1` (or a single
/// job) everything runs inline on the caller's thread — the sequential and
/// parallel paths produce identical results by construction.
///
/// Panics in a job propagate to the caller once the scope joins.
pub fn run_jobs<J, T, F>(workers: usize, jobs: Vec<J>, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(usize, J) -> T + Sync,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let workers = workers.min(n);

    // Per-worker deques, seeded round-robin so every worker starts busy.
    let queues: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back((i, job));
    }

    let remaining = AtomicUsize::new(n);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let remaining = &remaining;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (back = most recently queued, cache-warm)...
                let mut next = queues[me].lock().unwrap().pop_back();
                // ...then steal the *oldest* job from the first busy sibling.
                if next.is_none() {
                    for victim in (0..queues.len()).filter(|v| *v != me) {
                        next = queues[victim].lock().unwrap().pop_front();
                        if next.is_some() {
                            break;
                        }
                    }
                }
                match next {
                    Some((key, job)) => {
                        let out = f(key, job);
                        *results[key].lock().unwrap() = Some(out);
                        remaining.fetch_sub(1, Ordering::Release);
                    }
                    None => {
                        // All queues drained; in-flight jobs may still add
                        // nothing, so exit once the counter hits zero.
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("pool ran every job"))
        .collect()
}

/// One simulation's observability record.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Stable job key, e.g. `GGNN/D1B/hsu` or `fig10/MNT/w=8`.
    pub key: String,
    /// Host wall-time the simulation took.
    pub wall: Duration,
    /// Simulated cycles.
    pub cycles: u64,
    /// SM ticks the run loop actually executed — equal to
    /// `cycles × num_sms` under stepped simulation, smaller under
    /// event-driven fast-forwarding (the difference is the skipped-cycle
    /// win; see `hsu_sim::stats::SchedStats`).
    pub ticks_executed: u64,
    /// Highest warp-buffer occupancy any RT/HSU unit reached.
    pub peak_warp_buffer: u64,
}

impl RunRecord {
    /// Builds a record from a finished report.
    pub fn from_report(key: impl Into<String>, wall: Duration, report: &SimReport) -> Self {
        RunRecord {
            key: key.into(),
            wall,
            cycles: report.cycles,
            ticks_executed: report.sched.ticks_executed,
            peak_warp_buffer: report.peak_warp_buffer_occupancy(),
        }
    }

    /// Simulation throughput in simulated cycles per host second.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.cycles as f64 / secs
        }
    }
}

/// Times `sim()` and pairs its report with a [`RunRecord`].
pub fn timed_run(
    key: impl Into<String>,
    sim: impl FnOnce() -> SimReport,
) -> (SimReport, RunRecord) {
    let start = Instant::now();
    let report = sim();
    let record = RunRecord::from_report(key, start.elapsed(), &report);
    (report, record)
}

/// Formats the suite's per-run records as an aligned summary table with a
/// TOTAL row (summed wall-time and cycles, max peak occupancy).
pub fn records_table(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("== run records ({} simulations) ==\n", records.len());
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "job", "wall ms", "cycles", "ticks", "Mcyc/s", "peak-wb"
    );
    let mut wall = Duration::ZERO;
    let mut cycles = 0u64;
    let mut ticks = 0u64;
    let mut peak = 0u64;
    for r in records {
        wall += r.wall;
        cycles += r.cycles;
        ticks += r.ticks_executed;
        peak = peak.max(r.peak_warp_buffer);
        let _ = writeln!(
            out,
            "{:<24} {:>10.1} {:>12} {:>12} {:>10.2} {:>8}",
            r.key,
            r.wall.as_secs_f64() * 1e3,
            r.cycles,
            r.ticks_executed,
            r.cycles_per_sec() / 1e6,
            r.peak_warp_buffer
        );
    }
    let mcps = if wall.as_secs_f64() > 0.0 {
        cycles as f64 / wall.as_secs_f64() / 1e6
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "{:<24} {:>10.1} {:>12} {:>12} {:>10.2} {:>8}  (wall summed over workers)",
        "TOTAL",
        wall.as_secs_f64() * 1e3,
        cycles,
        ticks,
        mcps,
        peak
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Jobs deliberately finish out of order (larger index = shorter
        // spin); the merged results must still be in key order.
        let jobs: Vec<u64> = (0..64).collect();
        for workers in [1, 2, 3, 8] {
            let out = run_jobs(workers, jobs.clone(), |i, j| {
                let spin = (64 - i) * 10;
                let mut acc = j;
                for k in 0..spin {
                    acc = acc.wrapping_mul(31).wrapping_add(k as u64);
                }
                std::hint::black_box(acc);
                (i, j * 2)
            });
            let expect: Vec<(usize, u64)> = (0..64).map(|i| (i as usize, i * 2)).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn pool_matches_sequential_for_any_worker_count() {
        let jobs: Vec<u64> = (0..17).map(|i| i * 7 + 1).collect();
        let sequential = run_jobs(1, jobs.clone(), |i, j| job_seed(j, &format!("k{i}")));
        for workers in 2..=9 {
            let parallel = run_jobs(workers, jobs.clone(), |i, j| job_seed(j, &format!("k{i}")));
            assert_eq!(parallel, sequential, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_jobs(32, vec![1, 2, 3], |_, j| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<u32> = run_jobs(4, Vec::<u32>::new(), |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn job_seeds_are_stable_and_distinct() {
        assert_eq!(job_seed(7, "GGNN/D1B/hsu"), job_seed(7, "GGNN/D1B/hsu"));
        assert_ne!(job_seed(7, "GGNN/D1B/hsu"), job_seed(7, "GGNN/D1B/base"));
        assert_ne!(job_seed(7, "a"), job_seed(8, "a"));
    }

    #[test]
    fn records_table_has_total_row() {
        let recs = vec![
            RunRecord {
                key: "x/hsu".into(),
                wall: Duration::from_millis(2),
                cycles: 1000,
                ticks_executed: 400,
                peak_warp_buffer: 3,
            },
            RunRecord {
                key: "x/base".into(),
                wall: Duration::from_millis(4),
                cycles: 3000,
                ticks_executed: 900,
                peak_warp_buffer: 5,
            },
        ];
        let table = records_table(&recs);
        assert!(table.contains("TOTAL"));
        assert!(table.contains("x/hsu"));
        assert!(table.contains("4000"), "summed cycles:\n{table}");
        assert!(table.contains("1300"), "summed ticks:\n{table}");
        let total = recs[0].clone();
        assert!(total.cycles_per_sec() > 0.0);
    }
}
