//! Work-stealing parallel execution for the simulation suite.
//!
//! The run matrix (application × dataset × lowering variant × GPU
//! configuration) is embarrassingly parallel: every simulation is a pure
//! function of its trace and config. This module fans those jobs across a
//! small pool of scoped worker threads, using only `std` (no external
//! dependencies):
//!
//! * each worker owns a deque of jobs; it pops from the back of its own
//!   deque (LIFO, cache-warm) and **steals from the front** of a sibling's
//!   deque when its own runs dry (FIFO, oldest-first — the classic
//!   Arora/Blumofe/Plays split),
//! * every job carries a **stable key** (its submission index); results are
//!   merged in key order, never completion order, so output is
//!   byte-identical for any worker count,
//! * jobs never share mutable state; anything random derives a private seed
//!   via [`job_seed`] from the suite seed and the job's stable key.
//!
//! Observability: heavyweight entry points wrap each simulation in a
//! [`RunRecord`] (wall-time, simulated cycles, simulation throughput, peak
//! warp-buffer occupancy) and the suite prints them with [`records_table`].
//! Records go to stderr so stdout stays deterministic across `--jobs`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hsu_sim::error::{CancelToken, RunLimits, WatchdogCause};
use hsu_sim::{SimError, SimReport};

/// Locks a mutex, recovering the data if a panicking job poisoned it. Every
/// lock in this module guards plain job/result storage whose invariants hold
/// between operations, so the poison flag carries no information the
/// fault-tolerant pool doesn't already track via job outcomes.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A sensible default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `machine` hardware threads between the two levels of parallelism:
/// `jobs` suite workers (each running whole simulations) × `sim_threads`
/// parallel-epoch workers *inside* each simulation. Returns the resolved
/// `(jobs, sim_threads)` pair.
///
/// Policy — the product never oversubscribes the machine:
///
/// * `sim_threads == 0` (auto): outer parallelism wins, because suite jobs
///   are independent and scale near-linearly while epoch workers synchronize
///   twice per simulated cycle. Each job gets the leftover share,
///   `max(1, machine / jobs)`, so `jobs × sim_threads <= machine` whenever
///   `jobs <= machine`.
/// * `sim_threads` explicit: the per-simulation count is honoured (the user
///   asked for it — e.g. to exercise barrier behaviour) and the *job* count
///   is clamped to `max(1, machine / sim_threads)` instead.
///
/// Both knobs are floored at 1; results are identical for every resolved
/// value — only wall-time changes.
pub fn thread_budget(machine: usize, jobs: usize, sim_threads: usize) -> (usize, usize) {
    let machine = machine.max(1);
    let jobs = jobs.max(1);
    match machine.checked_div(sim_threads) {
        // sim_threads == 0: auto mode, outer parallelism wins.
        None => (jobs, (machine / jobs).max(1)),
        Some(job_cap) => (jobs.min(job_cap.max(1)), sim_threads),
    }
}

/// Splits `machine` hardware threads three ways: `serve_workers` serving
/// threads (total across all engine shards) × `jobs` suite workers ×
/// `sim_threads` parallel-epoch workers. Returns the resolved
/// `(jobs, sim_threads, serve_workers)` triple.
///
/// Policy — serving is latency-sensitive foreground work, so its budget
/// comes off the top: the requested `serve_workers` count is honoured
/// (capped at the machine), and the *remainder* is split between suite
/// jobs and sim threads by exactly the [`thread_budget`] two-way policy.
/// When serving wants the whole machine, batch work degrades to one
/// thread of each rather than zero — everything keeps making progress,
/// nothing oversubscribes by more than the two floor threads.
///
/// `serve_workers == 0` means "no service running" and degenerates to
/// [`thread_budget`] (the returned serve share is 0).
pub fn thread_budget3(
    machine: usize,
    jobs: usize,
    sim_threads: usize,
    serve_workers: usize,
) -> (usize, usize, usize) {
    let machine = machine.max(1);
    if serve_workers == 0 {
        let (j, s) = thread_budget(machine, jobs, sim_threads);
        return (j, s, 0);
    }
    let serve = serve_workers.min(machine);
    let rest = (machine - serve).max(1);
    let (j, s) = thread_budget(rest, jobs, sim_threads);
    (j, s, serve)
}

/// Derives an independent RNG seed for one job from the suite seed and the
/// job's stable key, by FNV-1a hashing the key into a SplitMix64-style mix.
/// Deterministic, order-free, and collision-resistant enough that no two
/// suite jobs share a stream.
pub fn job_seed(base_seed: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3); // FNV prime
    }
    let mut z = base_seed ^ h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs every job on a pool of `workers` scoped threads and returns the
/// results **in submission order** regardless of completion order.
///
/// The closure receives `(stable_index, job)`; the index is the job's key
/// and is safe to fold into [`job_seed`]. With `workers <= 1` (or a single
/// job) everything runs inline on the caller's thread — the sequential and
/// parallel paths produce identical results by construction.
///
/// Panics in a job propagate to the caller once the scope joins.
pub fn run_jobs<J, T, F>(workers: usize, jobs: Vec<J>, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(usize, J) -> T + Sync,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let workers = workers.min(n);

    // Per-worker deques, seeded round-robin so every worker starts busy.
    let queues: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        lock_or_recover(&queues[i % workers]).push_back((i, job));
    }

    let remaining = AtomicUsize::new(n);
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let remaining = &remaining;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (back = most recently queued, cache-warm)...
                let mut next = lock_or_recover(&queues[me]).pop_back();
                // ...then steal the *oldest* job from the first busy sibling.
                if next.is_none() {
                    for victim in (0..queues.len()).filter(|v| *v != me) {
                        next = lock_or_recover(&queues[victim]).pop_front();
                        if next.is_some() {
                            break;
                        }
                    }
                }
                match next {
                    Some((key, job)) => {
                        let out = f(key, job);
                        *lock_or_recover(&results[key]) = Some(out);
                        remaining.fetch_sub(1, Ordering::Release);
                    }
                    None => {
                        // All queues drained; in-flight jobs may still add
                        // nothing, so exit once the counter hits zero.
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            let Some(out) = slot.into_inner().unwrap_or_else(|p| p.into_inner()) else {
                unreachable!("pool ran every job");
            };
            out
        })
        .collect()
}

/// How the fault-tolerant pool reacts to failing jobs.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// `false` (the default): the first job failure cancels every job that
    /// has not started yet (fail-fast). `true`: keep running the remaining
    /// jobs and report a partial result set.
    pub keep_going: bool,
    /// Wall-clock budget per job attempt; enforced cooperatively inside
    /// `Gpu::run_guarded`, so a stuck simulation stops at its next loop
    /// iteration, not mid-instruction.
    pub job_timeout: Option<Duration>,
    /// Extra attempts after the first failure/timeout (cancelled jobs are
    /// never retried — the batch is already shutting down).
    pub retries: u32,
    /// Pause before each retry, scaled linearly by the attempt number.
    pub retry_backoff: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            keep_going: false,
            job_timeout: None,
            retries: 1,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// Final per-job disposition in a fault-tolerant batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Succeeded on the first attempt.
    Ok,
    /// Succeeded, but only after at least one retry.
    Retried,
    /// Every attempt failed (typed error or panic).
    Failed,
    /// The last attempt exceeded the per-job wall-clock timeout.
    Timeout,
    /// Never attempted: an earlier failure cancelled the batch (fail-fast).
    Skipped,
}

impl JobStatus {
    /// Lower-case label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Retried => "retried",
            JobStatus::Failed => "failed",
            JobStatus::Timeout => "timeout",
            JobStatus::Skipped => "skipped",
        }
    }
}

/// Why a job's final attempt did not produce a result.
#[derive(Debug)]
pub enum JobError {
    /// The job returned a typed simulator error.
    Sim(SimError),
    /// The job panicked; the payload is rendered to a string (panic
    /// isolation: the pool and its sibling jobs keep running).
    Panic(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "{e}"),
            JobError::Panic(p) => write!(f, "panic: {p}"),
        }
    }
}

/// One job's result in a fault-tolerant batch: either a value or the reason
/// there is none, plus how we got there.
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// The job's stable key.
    pub key: String,
    /// Attempts actually started (0 for skipped jobs).
    pub attempts: u32,
    /// Final disposition.
    pub status: JobStatus,
    /// The value, or the last attempt's error.
    pub result: Result<T, JobError>,
}

impl<T> JobOutcome<T> {
    /// `true` when the job produced a value.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-tolerant variant of [`run_jobs`]: each keyed job runs under
/// `catch_unwind` with an optional per-attempt wall-clock deadline, failures
/// are retried per the [`FaultPolicy`], and under the fail-fast default the
/// first exhausted failure cancels all not-yet-started jobs through a shared
/// [`CancelToken`]. Every submitted job gets a [`JobOutcome`] in submission
/// order — a poisoned job never takes down the batch, it just shows up as
/// `failed` (or `timeout`) in the partial report.
///
/// The closure receives `(stable_index, &job, &RunLimits)` and must thread
/// the limits into `Gpu::run_guarded` (or honour them itself) for timeouts
/// and cancellation to preempt a running simulation.
pub fn run_jobs_ft<J, T, F>(
    workers: usize,
    policy: &FaultPolicy,
    jobs: Vec<(String, J)>,
    f: F,
) -> Vec<JobOutcome<T>>
where
    J: Send,
    T: Send,
    F: Fn(usize, &J, &RunLimits) -> Result<T, SimError> + Sync,
{
    let cancel = CancelToken::new();
    let cancel_ref = &cancel;
    let policy_ref = policy;
    let f = &f;
    run_jobs(workers, jobs, move |i, (key, job)| {
        let mut attempts = 0u32;
        loop {
            if cancel_ref.is_cancelled() {
                let status = if attempts == 0 {
                    JobStatus::Skipped
                } else {
                    JobStatus::Failed
                };
                return JobOutcome {
                    key,
                    attempts,
                    status,
                    result: Err(JobError::Sim(SimError::Watchdog {
                        kernel: String::new(),
                        cycles_simulated: 0,
                        cause: WatchdogCause::Cancelled,
                    })),
                };
            }
            attempts += 1;
            let mut limits = RunLimits::none().with_cancel(cancel_ref.clone());
            if let Some(budget) = policy_ref.job_timeout {
                limits = limits.with_deadline(Instant::now() + budget);
            }
            let attempt = catch_unwind(AssertUnwindSafe(|| f(i, &job, &limits)));
            let error = match attempt {
                Ok(Ok(value)) => {
                    let status = if attempts > 1 {
                        JobStatus::Retried
                    } else {
                        JobStatus::Ok
                    };
                    return JobOutcome {
                        key,
                        attempts,
                        status,
                        result: Ok(value),
                    };
                }
                Ok(Err(e)) => JobError::Sim(e),
                Err(payload) => JobError::Panic(panic_message(payload)),
            };
            let cancelled = matches!(
                &error,
                JobError::Sim(SimError::Watchdog {
                    cause: WatchdogCause::Cancelled,
                    ..
                })
            );
            if !cancelled && attempts <= policy_ref.retries {
                std::thread::sleep(policy_ref.retry_backoff * attempts);
                continue;
            }
            let status = match &error {
                _ if cancelled => JobStatus::Failed,
                JobError::Sim(SimError::Watchdog {
                    cause: WatchdogCause::Deadline,
                    ..
                }) => JobStatus::Timeout,
                _ => JobStatus::Failed,
            };
            if !policy_ref.keep_going {
                cancel_ref.cancel();
            }
            return JobOutcome {
                key,
                attempts,
                status,
                result: Err(error),
            };
        }
    })
}

/// Formats a fault-tolerant batch's per-job statuses, with error details for
/// everything that did not produce a value (the "partial report").
pub fn outcomes_table<T>(outcomes: &[JobOutcome<T>]) -> String {
    use std::fmt::Write as _;
    let failed = outcomes.iter().filter(|o| !o.is_ok()).count();
    let mut out = format!(
        "== job outcomes ({} jobs, {} ok, {} failed) ==\n",
        outcomes.len(),
        outcomes.len() - failed,
        failed
    );
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>9}  detail",
        "job", "status", "attempts"
    );
    for o in outcomes {
        let detail = match &o.result {
            Ok(_) => String::new(),
            Err(e) => e.to_string().lines().next().unwrap_or("").to_string(),
        };
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>9}  {}",
            o.key,
            o.status.label(),
            o.attempts,
            detail
        );
    }
    out
}

/// One simulation's observability record.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Stable job key, e.g. `GGNN/D1B/hsu` or `fig10/MNT/w=8`.
    pub key: String,
    /// Host wall-time the simulation took.
    pub wall: Duration,
    /// Simulated cycles.
    pub cycles: u64,
    /// SM ticks the run loop actually executed — equal to
    /// `cycles × num_sms` under stepped simulation, smaller under
    /// event-driven fast-forwarding (the difference is the skipped-cycle
    /// win; see `hsu_sim::stats::SchedStats`).
    pub ticks_executed: u64,
    /// Highest warp-buffer occupancy any RT/HSU unit reached.
    pub peak_warp_buffer: u64,
}

impl RunRecord {
    /// Builds a record from a finished report.
    pub fn from_report(key: impl Into<String>, wall: Duration, report: &SimReport) -> Self {
        RunRecord {
            key: key.into(),
            wall,
            cycles: report.cycles,
            ticks_executed: report.sched.ticks_executed,
            peak_warp_buffer: report.peak_warp_buffer_occupancy(),
        }
    }

    /// Simulation throughput in simulated cycles per host second.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.cycles as f64 / secs
        }
    }
}

/// Times `sim()` and pairs its report with a [`RunRecord`], passing typed
/// simulation errors through untouched.
pub fn timed_run(
    key: impl Into<String>,
    sim: impl FnOnce() -> Result<SimReport, SimError>,
) -> Result<(SimReport, RunRecord), SimError> {
    let start = Instant::now();
    let report = sim()?;
    let record = RunRecord::from_report(key, start.elapsed(), &report);
    Ok((report, record))
}

/// Formats the suite's per-run records as an aligned summary table with a
/// TOTAL row (summed wall-time and cycles, max peak occupancy).
pub fn records_table(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("== run records ({} simulations) ==\n", records.len());
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "job", "wall ms", "cycles", "ticks", "Mcyc/s", "peak-wb"
    );
    let mut wall = Duration::ZERO;
    let mut cycles = 0u64;
    let mut ticks = 0u64;
    let mut peak = 0u64;
    for r in records {
        wall += r.wall;
        cycles += r.cycles;
        ticks += r.ticks_executed;
        peak = peak.max(r.peak_warp_buffer);
        let _ = writeln!(
            out,
            "{:<24} {:>10.1} {:>12} {:>12} {:>10.2} {:>8}",
            r.key,
            r.wall.as_secs_f64() * 1e3,
            r.cycles,
            r.ticks_executed,
            r.cycles_per_sec() / 1e6,
            r.peak_warp_buffer
        );
    }
    let mcps = if wall.as_secs_f64() > 0.0 {
        cycles as f64 / wall.as_secs_f64() / 1e6
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "{:<24} {:>10.1} {:>12} {:>12} {:>10.2} {:>8}  (wall summed over workers)",
        "TOTAL",
        wall.as_secs_f64() * 1e3,
        cycles,
        ticks,
        mcps,
        peak
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Jobs deliberately finish out of order (larger index = shorter
        // spin); the merged results must still be in key order.
        let jobs: Vec<u64> = (0..64).collect();
        for workers in [1, 2, 3, 8] {
            let out = run_jobs(workers, jobs.clone(), |i, j| {
                let spin = (64 - i) * 10;
                let mut acc = j;
                for k in 0..spin {
                    acc = acc.wrapping_mul(31).wrapping_add(k as u64);
                }
                std::hint::black_box(acc);
                (i, j * 2)
            });
            let expect: Vec<(usize, u64)> = (0..64).map(|i| (i as usize, i * 2)).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn pool_matches_sequential_for_any_worker_count() {
        let jobs: Vec<u64> = (0..17).map(|i| i * 7 + 1).collect();
        let sequential = run_jobs(1, jobs.clone(), |i, j| job_seed(j, &format!("k{i}")));
        for workers in 2..=9 {
            let parallel = run_jobs(workers, jobs.clone(), |i, j| job_seed(j, &format!("k{i}")));
            assert_eq!(parallel, sequential, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_jobs(32, vec![1, 2, 3], |_, j| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<u32> = run_jobs(4, Vec::<u32>::new(), |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_budget_never_oversubscribes() {
        // Auto: outer jobs win, inner threads get the leftover share.
        assert_eq!(thread_budget(16, 4, 0), (4, 4));
        assert_eq!(thread_budget(8, 8, 0), (8, 1));
        assert_eq!(thread_budget(1, 8, 0), (8, 1));
        assert_eq!(thread_budget(16, 1, 0), (1, 16));
        // Explicit: the per-simulation count is honoured, jobs are clamped.
        assert_eq!(thread_budget(16, 8, 4), (4, 4));
        assert_eq!(thread_budget(8, 8, 8), (1, 8));
        assert_eq!(thread_budget(1, 8, 2), (1, 2));
        // The product never exceeds the machine beyond what a single level
        // of parallelism already requested on its own (each knob floors at
        // 1, and an explicit over-request is honoured on its own axis —
        // never *multiplied* by the other axis).
        for machine in 1..=32 {
            for jobs in 1..=16 {
                for st in 0..=8 {
                    let (j, t) = thread_budget(machine, jobs, st);
                    assert!(j >= 1 && t >= 1);
                    assert!(
                        j * t <= machine.max(j).max(t),
                        "machine={machine} jobs={jobs} st={st} -> {j}x{t}"
                    );
                }
            }
        }
    }

    #[test]
    fn thread_budget3_pins_the_three_way_split() {
        // No service running: exactly the two-way policy, serve share 0.
        assert_eq!(thread_budget3(16, 4, 0, 0), (4, 4, 0));
        assert_eq!(thread_budget3(16, 8, 4, 0), (4, 4, 0));
        // Serving comes off the top; the remainder splits two-way.
        assert_eq!(thread_budget3(16, 4, 0, 4), (4, 3, 4)); // 12 left: 4 jobs x 3 epochs
        assert_eq!(thread_budget3(16, 8, 4, 8), (2, 4, 8)); // 8 left, explicit st=4
        assert_eq!(thread_budget3(8, 2, 0, 6), (2, 1, 6)); // 2 left: jobs win
                                                           // Serving wants the whole machine (or more): it is capped at the
                                                           // machine and batch work degrades to 1x1, never to zero.
        assert_eq!(thread_budget3(8, 4, 0, 8), (4, 1, 8));
        assert_eq!(thread_budget3(4, 2, 2, 64), (1, 2, 4));
        // Single-core host (this repo's CI box): everyone gets one thread.
        assert_eq!(thread_budget3(1, 4, 0, 2), (4, 1, 1));
        // Invariants across the space: all shares >= the floors, the serve
        // share never exceeds the machine, and the batch product never
        // exceeds what the two-way policy would grant on the remainder.
        for machine in 1..=32 {
            for jobs in 1..=8 {
                for st in 0..=4 {
                    for sw in 0..=40 {
                        let (j, t, s) = thread_budget3(machine, jobs, st, sw);
                        assert!(j >= 1 && t >= 1);
                        assert!(s <= machine);
                        assert_eq!(s, if sw == 0 { 0 } else { sw.min(machine) });
                        let rest = (machine - s).max(1);
                        assert_eq!(
                            (j, t),
                            thread_budget(rest, jobs, st),
                            "machine={machine} jobs={jobs} st={st} sw={sw}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn job_seeds_are_stable_and_distinct() {
        assert_eq!(job_seed(7, "GGNN/D1B/hsu"), job_seed(7, "GGNN/D1B/hsu"));
        assert_ne!(job_seed(7, "GGNN/D1B/hsu"), job_seed(7, "GGNN/D1B/base"));
        assert_ne!(job_seed(7, "a"), job_seed(8, "a"));
    }

    #[test]
    fn keep_going_isolates_a_panicking_job() {
        let policy = FaultPolicy {
            keep_going: true,
            retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..FaultPolicy::default()
        };
        let jobs: Vec<(String, u64)> = (0..8).map(|i| (format!("job{i}"), i)).collect();
        for workers in [1, 4] {
            let outcomes = run_jobs_ft(workers, &policy, jobs.clone(), |_, j, _| {
                if *j == 3 {
                    panic!("poisoned job payload");
                }
                Ok(*j * 2)
            });
            assert_eq!(outcomes.len(), 8, "workers={workers}");
            for o in &outcomes {
                if o.key == "job3" {
                    assert_eq!(o.status, JobStatus::Failed);
                    assert_eq!(o.attempts, 2, "failed job must be retried once");
                    let Err(JobError::Panic(msg)) = &o.result else {
                        panic!("expected a panic outcome, got {:?}", o.result);
                    };
                    assert!(msg.contains("poisoned job payload"));
                } else {
                    assert_eq!(o.status, JobStatus::Ok, "{} must survive", o.key);
                    assert!(o.is_ok());
                }
            }
        }
    }

    #[test]
    fn fail_fast_cancels_pending_jobs() {
        // One worker serializes the batch, so everything queued after the
        // poisoned job must come back skipped (never attempted).
        let policy = FaultPolicy {
            keep_going: false,
            retries: 0,
            ..FaultPolicy::default()
        };
        let jobs: Vec<(String, u64)> = (0..6).map(|i| (format!("job{i}"), i)).collect();
        let outcomes = run_jobs_ft(1, &policy, jobs, |_, j, _| {
            if *j == 1 {
                return Err(SimError::TraceDecode {
                    detail: "injected".into(),
                });
            }
            Ok(*j)
        });
        assert_eq!(outcomes[0].status, JobStatus::Ok);
        assert_eq!(outcomes[1].status, JobStatus::Failed);
        for o in &outcomes[2..] {
            assert_eq!(o.status, JobStatus::Skipped, "{} ran after cancel", o.key);
            assert_eq!(o.attempts, 0);
        }
    }

    #[test]
    fn retried_jobs_report_retried_status() {
        let policy = FaultPolicy {
            keep_going: true,
            retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..FaultPolicy::default()
        };
        let flaky_done = AtomicUsize::new(0);
        let outcomes = run_jobs_ft(1, &policy, vec![("flaky".to_string(), ())], |_, (), _| {
            if flaky_done.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(SimError::TraceDecode {
                    detail: "transient".into(),
                });
            }
            Ok(42u64)
        });
        assert_eq!(outcomes[0].status, JobStatus::Retried);
        assert_eq!(outcomes[0].attempts, 2);
        assert!(matches!(outcomes[0].result, Ok(42)));
    }

    #[test]
    fn outcomes_table_lists_statuses_and_details() {
        let outcomes = vec![
            JobOutcome {
                key: "a".into(),
                attempts: 1,
                status: JobStatus::Ok,
                result: Ok(1u32),
            },
            JobOutcome {
                key: "b".into(),
                attempts: 2,
                status: JobStatus::Failed,
                result: Err(JobError::Panic("boom".into())),
            },
        ];
        let table = outcomes_table(&outcomes);
        assert!(table.contains("2 jobs, 1 ok, 1 failed"));
        assert!(table.contains("failed"));
        assert!(table.contains("boom"));
    }

    #[test]
    fn records_table_has_total_row() {
        let recs = vec![
            RunRecord {
                key: "x/hsu".into(),
                wall: Duration::from_millis(2),
                cycles: 1000,
                ticks_executed: 400,
                peak_warp_buffer: 3,
            },
            RunRecord {
                key: "x/base".into(),
                wall: Duration::from_millis(4),
                cycles: 3000,
                ticks_executed: 900,
                peak_warp_buffer: 5,
            },
        ];
        let table = records_table(&recs);
        assert!(table.contains("TOTAL"));
        assert!(table.contains("x/hsu"));
        assert!(table.contains("4000"), "summed cycles:\n{table}");
        assert!(table.contains("1300"), "summed ticks:\n{table}");
        let total = recs[0].clone();
        assert!(total.cycles_per_sec() > 0.0);
    }
}
