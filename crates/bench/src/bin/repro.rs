//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--sms N] [--quick] [--seed S] [--jobs N] [--sim-mode M]
//!       [--sim-threads N] [--keep-going] [--job-timeout SECS]
//!       [--archive-dir DIR] [--no-cache] <item>...
//!   items: table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//!          fig15 fig16 rtindex ablation all
//!          traces (--trace FILE ...) gen-fault-traces (--out DIR)
//! ```
//!
//! `--jobs N` fans the run matrix over N worker threads (0 = all cores).
//! `--sim-mode stepped|event|parallel` selects the run-loop strategy
//! (default: event); reports are identical in every mode, so stdout does
//! not change. `--sim-threads N` sets the parallel-epoch worker count
//! inside each simulation (0 = auto); the two levels of parallelism share
//! one machine budget via [`hsu_bench::runner::thread_budget`], so
//! `--jobs 8 --sim-mode parallel` never spawns `jobs × sim-threads`
//! workers. Figure output on stdout is byte-identical for every worker
//! count, thread count, and simulation mode; the per-run observability
//! table goes to stderr.
//!
//! Failure semantics: the default is fail-fast — the first failing
//! simulation cancels the not-yet-started jobs and `repro` exits nonzero
//! with a per-job status table. `--keep-going` runs everything anyway and
//! reports a partial result set (statuses `ok`, `retried`, `failed`,
//! `timeout`, `skipped`); `--job-timeout SECS` bounds each simulation's
//! wall-clock, enforced cooperatively inside the run loop. Failed or
//! timed-out jobs are retried once with backoff before they count as
//! failures. The `traces` item replays `.hsut` trace files through the same
//! fault-tolerant pool, and `gen-fault-traces` emits one healthy and three
//! deliberately corrupted trace files for exercising that path (CI does
//! exactly this).
//!
//! `--archive-dir DIR` attaches the content-keyed `.hsar` build cache
//! ([`hsu_bench::ArchiveCache`]): generated datasets, built indexes, and
//! lowered traces are stored on the first run and loaded on re-runs, so the
//! expensive build phase collapses to file reads. Figure output stays
//! byte-identical warm or cold — the cache key pins every parameter the
//! artifact bytes depend on. `--no-cache` is the escape hatch that forces a
//! cold build even when `--archive-dir` is given.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::time::Duration;

use hsu_bench::runner::FaultPolicy;
use hsu_bench::{figures, runner, Suite, SuiteConfig};
use hsu_sim::faults::{corrupt_trace_bytes, TraceFault};
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
use hsu_sim::trace_io::{load_trace, save_trace, write_trace};
use hsu_sim::{Gpu, SimError};

fn main() {
    let mut config = SuiteConfig::default();
    let mut policy = FaultPolicy::default();
    let mut items: Vec<String> = Vec::new();
    let mut trace_files: Vec<std::path::PathBuf> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut no_cache = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--out needs a directory"))
                        .into(),
                );
            }
            "--trace" => {
                trace_files.push(
                    args.next()
                        .unwrap_or_else(|| usage("--trace needs a file"))
                        .into(),
                );
            }
            "--sms" => {
                config.sms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sms needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number (0 = all cores)"));
                config.jobs = if n == 0 { runner::default_jobs() } else { n };
            }
            "--quick" => {
                config.scale_divisor = 4;
                config.sms = config.sms.min(4);
            }
            "--sim-mode" => {
                config.sim_mode = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sim-mode needs 'stepped', 'event' or 'parallel'"));
            }
            "--sim-threads" => {
                config.sim_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sim-threads needs a number (0 = auto)"));
            }
            "--archive-dir" => {
                config.archive_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--archive-dir needs a directory"))
                        .into(),
                );
            }
            "--no-cache" => no_cache = true,
            "--keep-going" => policy.keep_going = true,
            "--job-timeout" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--job-timeout needs a number of seconds"));
                policy.job_timeout = Some(Duration::from_secs(secs));
            }
            "--help" | "-h" => usage(""),
            item => items.push(item.to_string()),
        }
    }
    if items.is_empty() {
        usage("no items requested");
    }
    // `--no-cache` wins over `--archive-dir`: the escape hatch forces a
    // cold build without touching (or trusting) the cache directory.
    if no_cache {
        config.archive_dir = None;
    }
    // Split the machine between suite workers and per-simulation epoch
    // workers so the two levels of parallelism never oversubscribe it. The
    // serial modes ignore `sim_threads`, so their job counts only change
    // when `--sim-threads` was set explicitly (which implies parallel mode).
    let (jobs, sim_threads) =
        runner::thread_budget(runner::default_jobs(), config.jobs, config.sim_threads);
    config.jobs = jobs;
    config.sim_threads = sim_threads;
    if items.iter().any(|i| i == "all") {
        items = [
            "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "rtindex", "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut had_failures = false;

    let needs_suite = items.iter().any(|i| {
        matches!(
            i.as_str(),
            "fig7" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig13" | "fig14"
        )
    });
    let suite = if needs_suite {
        eprintln!(
            "building workload suite (sms={}, scale 1/{}, seed {}, jobs {}, sim-mode {})...",
            config.sms,
            config.scale_divisor,
            config.seed,
            config.jobs,
            config.sim_mode.name()
        );
        let build = Suite::build_with_policy(config.clone(), &policy).unwrap_or_else(|e| die(&e));
        if !build.all_ok() {
            eprintln!("{}", runner::outcomes_table(&build.outcomes));
            if !policy.keep_going {
                eprintln!(
                    "error: suite simulation failed (rerun with --keep-going for a partial report)"
                );
                std::process::exit(1);
            }
            had_failures = true;
        }
        let suite = build.suite;
        eprintln!("suite ready: {} app-dataset runs", suite.runs.len());
        eprintln!("{}", runner::records_table(&suite.records));
        Some(suite)
    } else {
        None
    };
    fn suite_ref(s: &Option<Suite>) -> &Suite {
        s.as_ref().unwrap_or_else(|| usage("item needs the suite"))
    }

    for item in &items {
        let text = match item.as_str() {
            "table2" => figures::table2(),
            "table3" => figures::table3(config.sms),
            "fig7" => figures::fig7(suite_ref(&suite)),
            "fig8" => figures::fig8(suite_ref(&suite)),
            "fig9" => figures::fig9(suite_ref(&suite)),
            "fig10" => figures::fig10(suite_ref(&suite)).unwrap_or_else(|e| die(&e)),
            "fig11" => figures::fig11(suite_ref(&suite)).unwrap_or_else(|e| die(&e)),
            "fig12" => figures::fig12(suite_ref(&suite)),
            "fig13" => figures::fig13(suite_ref(&suite)),
            "fig14" => figures::fig14(suite_ref(&suite)),
            "fig6" => hsu_rtl::area::fig6_table(),
            "fig15" => figures::fig15(),
            "fig16" => figures::fig16(),
            "rtindex" => figures::rtindex(config.sms, config.scale_divisor, config.sim_mode)
                .unwrap_or_else(|e| die(&e)),
            "ablation" => figures::ablation(
                config.sms,
                config.scale_divisor,
                config.jobs,
                config.sim_mode,
            )
            .unwrap_or_else(|e| die(&e)),
            "traces" => {
                let (text, ok) = run_trace_files(&config, &policy, &trace_files);
                if !ok {
                    had_failures = true;
                }
                text
            }
            "gen-fault-traces" => {
                let Some(dir) = &out_dir else {
                    usage("gen-fault-traces needs --out DIR");
                };
                gen_fault_traces(dir).unwrap_or_else(|e| die(&e))
            }
            other => usage(&format!("unknown item '{other}'")),
        };
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                die(&SimError::from_io(format!("creating {}", dir.display()), e));
            }
            let path = dir.join(format!("{item}.txt"));
            if let Err(e) = std::fs::write(&path, &text) {
                die(&SimError::from_io(format!("writing {}", path.display()), e));
            }
        }
    }
    if let Some(suite) = &suite {
        println!("{}", figures::summary(suite));
    }
    if had_failures {
        std::process::exit(1);
    }
}

/// Replays `.hsut` trace files through the fault-tolerant pool and formats
/// the per-job status table (the partial report). Returns the table and
/// whether every job succeeded.
fn run_trace_files(
    config: &SuiteConfig,
    policy: &FaultPolicy,
    files: &[std::path::PathBuf],
) -> (String, bool) {
    if files.is_empty() {
        usage("the 'traces' item needs at least one --trace FILE");
    }
    let gpu_cfg = config.gpu_config();
    let jobs: Vec<(String, std::path::PathBuf)> = files
        .iter()
        .map(|p| (p.display().to_string(), p.clone()))
        .collect();
    let outcomes = runner::run_jobs_ft(config.jobs, policy, jobs, |_, path, limits| {
        let trace = load_trace(path)?;
        let report = Gpu::new(gpu_cfg.clone()).run_guarded(&trace, limits)?;
        Ok((trace.name().to_string(), report.cycles))
    });
    let mut text = runner::outcomes_table(&outcomes);
    for o in &outcomes {
        if let Ok((kernel, cycles)) = &o.result {
            text.push_str(&format!(
                "{}: kernel '{kernel}' ran {cycles} cycles\n",
                o.key
            ));
        }
    }
    let ok = outcomes.iter().all(|o| o.is_ok());
    (text, ok)
}

/// Writes one healthy and three corrupted trace files into `dir`, for
/// exercising the fault-tolerant replay path (`traces`) end to end.
fn gen_fault_traces(dir: &std::path::Path) -> Result<String, SimError> {
    let mut kernel = KernelTrace::new("fault-smoke");
    for t in 0..64u64 {
        let mut thread = ThreadTrace::new();
        thread.push(ThreadOp::Alu { count: 2 });
        thread.push(ThreadOp::Load {
            addr: t * 128,
            bytes: 8,
        });
        kernel.push_thread(thread);
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| SimError::from_io(format!("creating {}", dir.display()), e))?;
    save_trace(&kernel, dir.join("healthy.hsut"))?;
    let mut bytes = Vec::new();
    write_trace(&kernel, &mut bytes)
        .map_err(|e| SimError::from_io("encoding fault-smoke trace", e))?;
    let corrupted = [
        ("truncated.hsut", TraceFault::Truncate),
        ("bitflip.hsut", TraceFault::BitFlip),
        ("bogus.hsut", TraceFault::BogusOpcode),
    ];
    let mut out = String::from("wrote fault-injection traces:\n");
    out.push_str(&format!("  {}\n", dir.join("healthy.hsut").display()));
    for (name, fault) in corrupted {
        let path = dir.join(name);
        std::fs::write(&path, corrupt_trace_bytes(&bytes, fault, 7))
            .map_err(|e| SimError::from_io(format!("writing {}", path.display()), e))?;
        out.push_str(&format!("  {}\n", path.display()));
    }
    Ok(out)
}

fn die(err: &SimError) -> ! {
    eprintln!("error [{}]: {err}", err.kind());
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--sms N] [--quick] [--seed S] [--jobs N] [--sim-mode M] [--out DIR]\n\
         \x20            [--sim-threads N] [--keep-going] [--job-timeout SECS]\n\
         \x20            [--archive-dir DIR] [--no-cache] [--trace FILE]... <item>...\n\
         items: table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16\n\
         \x20      rtindex ablation all traces gen-fault-traces\n\
         --jobs N runs the simulation matrix on N worker threads (0 = all cores);\n\
         --sim-mode stepped|event|parallel picks the run loop (default: event);\n\
         --sim-threads N sets parallel-epoch workers per simulation (0 = auto;\n\
         \x20  shares one machine budget with --jobs, never multiplies it);\n\
         --archive-dir DIR caches datasets/indexes/traces as content-keyed .hsar\n\
         \x20  archives so re-runs skip the build phase (stdout is byte-identical\n\
         \x20  warm or cold); --no-cache forces a cold build, ignoring --archive-dir;\n\
         stdout is byte-identical for any N and every mode;\n\
         --keep-going reports partial results instead of failing fast;\n\
         --job-timeout SECS bounds each simulation's wall-clock (watchdog);\n\
         'traces' replays --trace files; 'gen-fault-traces' writes test traces to --out"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
