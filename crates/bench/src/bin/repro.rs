//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--sms N] [--quick] [--seed S] [--jobs N] [--sim-mode M] <item>...
//!   items: table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//!          fig15 fig16 rtindex all
//! ```
//!
//! `--jobs N` fans the run matrix over N worker threads (0 = all cores).
//! `--sim-mode stepped|event` selects the run-loop strategy (default:
//! event); reports are identical either way, so stdout does not change.
//! Figure output on stdout is byte-identical for every worker count and
//! simulation mode; the per-run observability table goes to stderr.

use hsu_bench::{figures, runner, Suite, SuiteConfig};

fn main() {
    let mut config = SuiteConfig::default();
    let mut items: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--out needs a directory"))
                        .into(),
                );
            }
            "--sms" => {
                config.sms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sms needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number (0 = all cores)"));
                config.jobs = if n == 0 { runner::default_jobs() } else { n };
            }
            "--quick" => {
                config.scale_divisor = 4;
                config.sms = config.sms.min(4);
            }
            "--sim-mode" => {
                config.sim_mode = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sim-mode needs 'stepped' or 'event'"));
            }
            "--help" | "-h" => usage(""),
            item => items.push(item.to_string()),
        }
    }
    if items.is_empty() {
        usage("no items requested");
    }
    if items.iter().any(|i| i == "all") {
        items = [
            "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "rtindex", "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let needs_suite = items.iter().any(|i| {
        matches!(
            i.as_str(),
            "fig7" | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig13" | "fig14"
        )
    });
    let suite = if needs_suite {
        eprintln!(
            "building workload suite (sms={}, scale 1/{}, seed {}, jobs {}, sim-mode {})...",
            config.sms,
            config.scale_divisor,
            config.seed,
            config.jobs,
            config.sim_mode.name()
        );
        let suite = Suite::build(config.clone());
        eprintln!("suite ready: {} app-dataset runs", suite.runs.len());
        eprintln!("{}", runner::records_table(&suite.records));
        Some(suite)
    } else {
        None
    };

    for item in &items {
        let text = match item.as_str() {
            "table2" => figures::table2(),
            "table3" => figures::table3(config.sms),
            "fig7" => figures::fig7(suite.as_ref().expect("suite built")),
            "fig8" => figures::fig8(suite.as_ref().expect("suite built")),
            "fig9" => figures::fig9(suite.as_ref().expect("suite built")),
            "fig10" => figures::fig10(suite.as_ref().expect("suite built")),
            "fig11" => figures::fig11(suite.as_ref().expect("suite built")),
            "fig12" => figures::fig12(suite.as_ref().expect("suite built")),
            "fig13" => figures::fig13(suite.as_ref().expect("suite built")),
            "fig14" => figures::fig14(suite.as_ref().expect("suite built")),
            "fig6" => hsu_rtl::area::fig6_table(),
            "fig15" => figures::fig15(),
            "fig16" => figures::fig16(),
            "rtindex" => figures::rtindex(config.sms, config.scale_divisor, config.sim_mode),
            "ablation" => figures::ablation(
                config.sms,
                config.scale_divisor,
                config.jobs,
                config.sim_mode,
            ),
            other => usage(&format!("unknown item '{other}'")),
        };
        println!("{text}");
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create --out directory");
            let path = dir.join(format!("{item}.txt"));
            std::fs::write(&path, &text)
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        }
    }
    if let Some(suite) = &suite {
        println!("{}", figures::summary(suite));
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--sms N] [--quick] [--seed S] [--jobs N] [--sim-mode M] [--out DIR] <item>...\n\
         items: table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 rtindex ablation all\n\
         --jobs N runs the simulation matrix on N worker threads (0 = all cores);\n\
         --sim-mode stepped|event picks the run loop (default: event);\n\
         stdout is byte-identical for any N and either mode"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
