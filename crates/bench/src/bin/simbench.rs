//! `simbench` — measure the event-driven run loop against the stepped
//! oracle on the full workload suite and emit a machine-readable report.
//!
//! ```text
//! simbench [--quick] [--sms N] [--seed S] [--jobs N] [--out PATH]
//! ```
//!
//! Builds the suite twice — once per [`hsu_sim::config::SimMode`] — then:
//!
//! 1. asserts every (app × dataset × variant) report is identical between
//!    the modes (exits non-zero on any divergence),
//! 2. writes a JSON summary (`BENCH_sim.json` by default) with wall time,
//!    simulated cycles, and SM ticks executed per mode (stepped mode ticks
//!    every SM on every cycle; event mode lets SMs sleep), plus the
//!    derived tick-reduction and wall-clock speedup factors.
//!
//! The JSON is hand-rolled: the workspace deliberately has no serde.

use std::time::Instant;

use hsu_bench::{runner, Suite, SuiteConfig};
use hsu_sim::config::SimMode;

struct ModeRun {
    suite: Suite,
    build_wall_s: f64,
    sim_wall_s: f64,
    cycles: u64,
    ticks_executed: u64,
}

fn run_mode(config: &SuiteConfig, mode: SimMode) -> ModeRun {
    let start = Instant::now();
    let suite = Suite::build(config.clone().with_sim_mode(mode));
    let build_wall_s = start.elapsed().as_secs_f64();
    let sim_wall_s: f64 = suite.records.iter().map(|r| r.wall.as_secs_f64()).sum();
    let cycles: u64 = suite.records.iter().map(|r| r.cycles).sum();
    let ticks_executed: u64 = suite.records.iter().map(|r| r.ticks_executed).sum();
    ModeRun {
        suite,
        build_wall_s,
        sim_wall_s,
        cycles,
        ticks_executed,
    }
}

fn main() {
    // The scheduler bench simulates a 32-SM machine (closer to the paper's
    // 80 than the 8-SM default the EXPERIMENTS.md figures use): event-mode
    // skipping is a per-SM property, so machine size is part of the result
    // and is recorded in the JSON config block.
    let mut config = SuiteConfig {
        sms: 32,
        ..SuiteConfig::default()
    };
    let mut out_path = std::path::PathBuf::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                config.scale_divisor = 4;
            }
            "--sms" => {
                config.sms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sms needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number (0 = all cores)"));
                config.jobs = if n == 0 { runner::default_jobs() } else { n };
            }
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| usage("--out needs a path"))
                    .into();
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    eprintln!(
        "simbench: suite sms={} scale=1/{} seed={} jobs={}",
        config.sms, config.scale_divisor, config.seed, config.jobs
    );
    let stepped = run_mode(&config, SimMode::Stepped);
    eprintln!(
        "stepped: {:.2}s build, {:.2}s simulating, {} ticks",
        stepped.build_wall_s, stepped.sim_wall_s, stepped.ticks_executed
    );
    let event = run_mode(&config, SimMode::Event);
    eprintln!(
        "event:   {:.2}s build, {:.2}s simulating, {} ticks",
        event.build_wall_s, event.sim_wall_s, event.ticks_executed
    );

    // The differential check: every report in the matrix must agree on every
    // architectural counter (sched counters differ by design).
    let mut divergences = 0usize;
    for (a, b) in stepped.suite.runs.iter().zip(&event.suite.runs) {
        for (variant, ra, rb) in [
            ("hsu", &a.hsu, &b.hsu),
            ("base", &a.base, &b.base),
            ("stripped", &a.stripped, &b.stripped),
        ] {
            if ra.normalized() != rb.normalized() {
                eprintln!("DIVERGENCE at {}/{variant}", a.label);
                divergences += 1;
            }
        }
    }
    let equivalent = divergences == 0;

    let tick_reduction = stepped.ticks_executed as f64 / event.ticks_executed.max(1) as f64;
    let sim_speedup = if event.sim_wall_s > 0.0 {
        stepped.sim_wall_s / event.sim_wall_s
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"config\": {{ \"sms\": {}, \"scale_divisor\": {}, \"seed\": {}, \"jobs\": {} }},\n  \
           \"runs\": {},\n  \
           \"modes\": {{\n    \
             \"stepped\": {},\n    \
             \"event\": {}\n  }},\n  \
           \"tick_reduction\": {:.3},\n  \
           \"sim_wall_speedup\": {:.3},\n  \
           \"equivalent\": {}\n}}\n",
        config.sms,
        config.scale_divisor,
        config.seed,
        config.jobs,
        stepped.suite.runs.len(),
        mode_json(&stepped),
        mode_json(&event),
        tick_reduction,
        sim_speedup,
        equivalent,
    );
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("write {}: {e}", out_path.display()));

    println!(
        "simbench: {} runs, ticks {} -> {} ({tick_reduction:.2}x fewer), \
         sim wall {:.2}s -> {:.2}s ({sim_speedup:.2}x), reports {}",
        stepped.suite.runs.len(),
        stepped.ticks_executed,
        event.ticks_executed,
        stepped.sim_wall_s,
        event.sim_wall_s,
        if equivalent { "identical" } else { "DIVERGED" },
    );
    println!("wrote {}", out_path.display());
    if !equivalent {
        eprintln!("error: {divergences} report(s) diverged between modes");
        std::process::exit(1);
    }
}

fn mode_json(m: &ModeRun) -> String {
    format!(
        "{{ \"build_wall_s\": {:.6}, \"sim_wall_s\": {:.6}, \"cycles\": {}, \"ticks_executed\": {} }}",
        m.build_wall_s, m.sim_wall_s, m.cycles, m.ticks_executed
    )
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: simbench [--quick] [--sms N] [--seed S] [--jobs N] [--out PATH]\n\
         runs the workload suite under both simulation modes, checks the\n\
         reports are identical, and writes a JSON timing/ticks summary\n\
         (32-SM machine by default; --quick = quarter-scale datasets)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
