//! `simbench` — measure the event-driven and parallel-epoch run loops
//! against the stepped oracle on the full workload suite and append a
//! machine-readable trajectory entry.
//!
//! ```text
//! simbench [--quick] [--sms N] [--seed S] [--jobs N] [--sim-threads N]
//!          [--archive-dir DIR] [--pr LABEL] [--out PATH]
//! ```
//!
//! Builds the suite three times — once per [`hsu_sim::config::SimMode`] —
//! then:
//!
//! 1. asserts every (app × dataset × variant) report is identical across
//!    all modes (exits non-zero on any divergence),
//! 2. runs the suite a fourth time under the treelet-scheduled RT core
//!    ([`hsu_sim::config::RtCoreKind::Treelet`], event mode) and asserts
//!    the functional projection of every report — instruction issue,
//!    warp retirement, RT instruction counts — matches the baseline
//!    organization (cycles and memory behaviour legitimately differ),
//! 3. **appends** an entry to the trajectory JSON (`BENCH_sim.json` by
//!    default): `{pr, config, runs, build_phase, modes, tick_reduction,
//!    speedup, organizations, equivalent}` with wall time, simulated
//!    cycles, and SM ticks executed per mode, plus both RT organizations'
//!    sim wall-clock and per-workload HSU speedup. The file is an
//!    append-only array so successive PRs record their own measurements
//!    next to history instead of erasing it; a legacy single-object
//!    snapshot is wrapped into the array on first append.
//!
//! Before the mode runs, the workload build phase is probed through the
//! `.hsar` archive cache: once against an empty cache directory (cold —
//! generators and index builders run, archives are written) and once again
//! (warm — everything loads from the archives). Both wall-times land in the
//! entry's `build_phase` block, and the three mode runs then reuse the warm
//! cache, which also exercises cold-vs-warm equivalence: any divergence the
//! cache introduced would trip the cross-mode report check. The probe uses
//! a throwaway directory under the system temp dir unless `--archive-dir`
//! pins it somewhere persistent.
//!
//! `--jobs` (suite workers) and `--sim-threads` (parallel-epoch workers
//! inside each simulation) share one machine budget via
//! [`hsu_bench::runner::thread_budget`] — the product never oversubscribes
//! the host. The JSON is hand-rolled: the workspace deliberately has no
//! serde.

use std::time::Instant;

use hsu_bench::trajectory::{append_entry, json_escape};
use hsu_bench::{runner, Suite, SuiteConfig};
use hsu_sim::config::{RtCoreKind, SimMode};

struct ModeRun {
    suite: Suite,
    build_wall_s: f64,
    sim_wall_s: f64,
    cycles: u64,
    ticks_executed: u64,
}

fn run_mode(config: &SuiteConfig, mode: SimMode) -> ModeRun {
    let start = Instant::now();
    let suite = Suite::build(config.clone().with_sim_mode(mode));
    let build_wall_s = start.elapsed().as_secs_f64();
    let sim_wall_s: f64 = suite.records.iter().map(|r| r.wall.as_secs_f64()).sum();
    let cycles: u64 = suite.records.iter().map(|r| r.cycles).sum();
    let ticks_executed: u64 = suite.records.iter().map(|r| r.ticks_executed).sum();
    ModeRun {
        suite,
        build_wall_s,
        sim_wall_s,
        cycles,
        ticks_executed,
    }
}

fn main() {
    // The scheduler bench simulates a 32-SM machine (closer to the paper's
    // 80 than the 8-SM default the EXPERIMENTS.md figures use): run-loop
    // skipping is a per-SM property, so machine size is part of the result
    // and is recorded in the JSON config block.
    let mut config = SuiteConfig {
        sms: 32,
        ..SuiteConfig::default()
    };
    let mut out_path = std::path::PathBuf::from("BENCH_sim.json");
    let mut pr_label = String::from("dev");
    let mut archive_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                config.scale_divisor = 4;
            }
            "--sms" => {
                config.sms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sms needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number (0 = all cores)"));
                config.jobs = if n == 0 { runner::default_jobs() } else { n };
            }
            "--sim-threads" => {
                config.sim_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sim-threads needs a number (0 = auto)"));
            }
            "--archive-dir" => {
                archive_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--archive-dir needs a directory"))
                        .into(),
                );
            }
            "--pr" => {
                pr_label = args.next().unwrap_or_else(|| usage("--pr needs a label"));
            }
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| usage("--out needs a path"))
                    .into();
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    // One machine budget for both parallelism levels; stepped/event runs
    // ignore `sim_threads`, so the resolved job count applies uniformly.
    // The host core count and the *resolved* knobs go into the entry's
    // config block: a 1-core host resolves every request to 1×1, and
    // without the context the near-1.0 "parallel" speedups such a host
    // measures would read as regressions.
    let host_cores = runner::default_jobs();
    let (jobs, sim_threads) = runner::thread_budget(host_cores, config.jobs, config.sim_threads);
    config.jobs = jobs;
    config.sim_threads = sim_threads;

    eprintln!(
        "simbench: suite sms={} scale=1/{} seed={} jobs={} sim-threads={}",
        config.sms, config.scale_divisor, config.seed, config.jobs, config.sim_threads
    );

    // Cold/warm build-phase probe: time phase A against an empty archive
    // cache (populating it), then again against the populated one. The
    // probe directory is throwaway unless --archive-dir pinned it.
    let (probe_dir, cleanup_probe) = match archive_dir {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("hsu-simbench-cache-{}", std::process::id())),
            true,
        ),
    };
    let cold_s = time_build_phase(&config, &probe_dir);
    let warm_s = time_build_phase(&config, &probe_dir);
    eprintln!(
        "build phase: {cold_s:.2}s cold -> {warm_s:.2}s warm ({:.1}x) via {}",
        cold_s / warm_s.max(1e-9),
        probe_dir.display()
    );
    // The mode runs reuse the warm cache: phase A collapses to archive
    // reads, and the cross-mode report check doubles as a cold-vs-warm
    // equivalence check (the cold stepped history established the goldens).
    config.archive_dir = Some(probe_dir.clone());

    let stepped = run_mode(&config, SimMode::Stepped);
    eprintln!(
        "stepped:  {:.2}s build, {:.2}s simulating, {} ticks",
        stepped.build_wall_s, stepped.sim_wall_s, stepped.ticks_executed
    );
    let event = run_mode(&config, SimMode::Event);
    eprintln!(
        "event:    {:.2}s build, {:.2}s simulating, {} ticks",
        event.build_wall_s, event.sim_wall_s, event.ticks_executed
    );
    let parallel = run_mode(&config, SimMode::ParallelEpoch);
    eprintln!(
        "parallel: {:.2}s build, {:.2}s simulating, {} ticks",
        parallel.build_wall_s, parallel.sim_wall_s, parallel.ticks_executed
    );

    // The differential check: every report in the matrix must agree on every
    // architectural counter across all three modes (sched counters differ
    // between stepped and the event-driven pair by design).
    let mut divergences = 0usize;
    for ((a, b), c) in stepped
        .suite
        .runs
        .iter()
        .zip(&event.suite.runs)
        .zip(&parallel.suite.runs)
    {
        for (variant, ra, rb, rc) in [
            ("hsu", &a.hsu, &b.hsu, &c.hsu),
            ("base", &a.base, &b.base, &c.base),
            ("stripped", &a.stripped, &b.stripped, &c.stripped),
        ] {
            if ra.normalized() != rb.normalized() {
                eprintln!("DIVERGENCE at {}/{variant} (event)", a.label);
                divergences += 1;
            }
            if ra.normalized() != rc.normalized() {
                eprintln!("DIVERGENCE at {}/{variant} (parallel-epoch)", a.label);
                divergences += 1;
            }
        }
    }
    // RT-organization leg: re-run the suite under the treelet-scheduled
    // core (event mode reuses the same warm cache — rt_core is a machine
    // knob, so phase A is all hits) and check the *functional* projection
    // of every report against the baseline organization. Cycles, memory
    // behaviour, and the staging/treelet counters legitimately differ
    // between the cores; instruction counts and retirement must not.
    let treelet = run_mode(
        &config.clone().with_rt_core(RtCoreKind::Treelet),
        SimMode::Event,
    );
    eprintln!(
        "treelet:  {:.2}s build, {:.2}s simulating, {} ticks",
        treelet.build_wall_s, treelet.sim_wall_s, treelet.ticks_executed
    );
    for (a, b) in event.suite.runs.iter().zip(&treelet.suite.runs) {
        for (variant, ra, rb) in [
            ("hsu", &a.hsu, &b.hsu),
            ("base", &a.base, &b.base),
            ("stripped", &a.stripped, &b.stripped),
        ] {
            let functional = |r: &hsu_sim::SimReport| {
                (
                    r.kernel.clone(),
                    r.issued,
                    r.issued_weighted,
                    r.warps_retired,
                    r.rt.warp_instructions,
                    r.rt.isa_instructions,
                )
            };
            if functional(ra) != functional(rb) {
                eprintln!("DIVERGENCE at {}/{variant} (treelet organization)", a.label);
                divergences += 1;
            }
        }
    }
    let equivalent = divergences == 0;

    let tick_reduction = stepped.ticks_executed as f64 / event.ticks_executed.max(1) as f64;
    let speedup_of = |m: &ModeRun| {
        if m.sim_wall_s > 0.0 {
            stepped.sim_wall_s / m.sim_wall_s
        } else {
            0.0
        }
    };

    let entry = format!(
        "  {{\n    \"pr\": \"{}\",\n    \
           \"config\": {{ \"sms\": {}, \"scale_divisor\": {}, \"seed\": {}, \"host_cores\": {}, \"jobs\": {}, \"sim_threads\": {} }},\n    \
           \"runs\": {},\n    \
           \"build_phase\": {{ \"cold_s\": {:.6}, \"warm_s\": {:.6} }},\n    \
           \"modes\": {{\n      \
             \"stepped\": {},\n      \
             \"event\": {},\n      \
             \"parallel\": {}\n    }},\n    \
           \"tick_reduction\": {:.3},\n    \
           \"speedup\": {{ \"event\": {:.3}, \"parallel\": {:.3} }},\n    \
           \"organizations\": {{\n      \
             \"baseline\": {},\n      \
             \"treelet\": {}\n    }},\n    \
           \"equivalent\": {}\n  }}",
        json_escape(&pr_label),
        config.sms,
        config.scale_divisor,
        config.seed,
        host_cores,
        config.jobs,
        config.sim_threads,
        stepped.suite.runs.len(),
        cold_s,
        warm_s,
        mode_json(&stepped),
        mode_json(&event),
        mode_json(&parallel),
        tick_reduction,
        speedup_of(&event),
        speedup_of(&parallel),
        org_json(&event),
        org_json(&treelet),
        equivalent,
    );
    append_entry(&out_path, &entry)
        .unwrap_or_else(|e| panic!("append {}: {e}", out_path.display()));
    if cleanup_probe {
        let _ = std::fs::remove_dir_all(&probe_dir);
    }

    println!(
        "simbench: {} runs, build {cold_s:.2}s cold / {warm_s:.2}s warm, \
         ticks {} -> {} ({tick_reduction:.2}x fewer), \
         sim wall {:.2}s -> event {:.2}s ({:.2}x) / parallel {:.2}s ({:.2}x), \
         treelet org {:.2}s, reports {}",
        stepped.suite.runs.len(),
        stepped.ticks_executed,
        event.ticks_executed,
        stepped.sim_wall_s,
        event.sim_wall_s,
        speedup_of(&event),
        parallel.sim_wall_s,
        speedup_of(&parallel),
        treelet.sim_wall_s,
        if equivalent { "identical" } else { "DIVERGED" },
    );
    println!("appended entry '{}' to {}", pr_label, out_path.display());
    if !equivalent {
        eprintln!("error: {divergences} report(s) diverged between modes");
        std::process::exit(1);
    }
}

/// Times one pass of the suite's build phase (phase A only — no
/// simulation) through the archive cache at `dir`. First call against an
/// empty directory is the cold measurement and populates the cache; the
/// second is the warm one.
fn time_build_phase(config: &SuiteConfig, dir: &std::path::Path) -> f64 {
    let cache = hsu_bench::ArchiveCache::new(Some(dir.to_path_buf()));
    let start = Instant::now();
    let traces = Suite::prepare_traces(config, &cache);
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "  build-phase pass: {:.2}s, {} trace bundles, cache {} hits / {} misses",
        elapsed,
        traces.len(),
        cache.hits(),
        cache.misses()
    );
    elapsed
}

/// Per-organization ablation block: sim wall-clock plus each workload's
/// HSU-vs-baseline speedup under that RT core. Both organizations run in
/// event mode, so the wall-clock columns compare like for like; the
/// speedups are *within*-organization (HSU over that core's own baseline),
/// which is the comparison the cross-organization ablation table reports.
fn org_json(m: &ModeRun) -> String {
    let workloads: Vec<String> = m
        .suite
        .runs
        .iter()
        .map(|r| {
            format!(
                "{{ \"label\": \"{}\", \"app\": \"{}\", \"hsu_cycles\": {}, \
                 \"base_cycles\": {}, \"hsu_speedup\": {:.4} }}",
                json_escape(&r.label),
                r.app.name(),
                r.hsu.cycles,
                r.base.cycles,
                r.speedup()
            )
        })
        .collect();
    format!(
        "{{ \"sim_wall_s\": {:.6}, \"cycles\": {}, \"workloads\": [\n        {}\n      ] }}",
        m.sim_wall_s,
        m.cycles,
        workloads.join(",\n        ")
    )
}

fn mode_json(m: &ModeRun) -> String {
    format!(
        "{{ \"build_wall_s\": {:.6}, \"sim_wall_s\": {:.6}, \"cycles\": {}, \"ticks_executed\": {} }}",
        m.build_wall_s, m.sim_wall_s, m.cycles, m.ticks_executed
    )
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: simbench [--quick] [--sms N] [--seed S] [--jobs N] [--sim-threads N]\n\
         \x20               [--archive-dir DIR] [--pr LABEL] [--out PATH]\n\
         runs the workload suite under all three simulation modes plus the\n\
         treelet RT organization, checks the reports are identical (and the\n\
         organizations functionally equivalent), and appends a JSON\n\
         timing/ticks trajectory entry with a per-organization ablation\n\
         block (32-SM machine by default; --quick = quarter-scale datasets;\n\
         --jobs and --sim-threads share one machine budget). The build phase\n\
         is timed cold and warm through the .hsar archive cache first\n\
         (--archive-dir pins the cache; default is a throwaway temp dir) and\n\
         both timings are recorded in the entry's build_phase block"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
