//! Append-only JSON trajectory files (`BENCH_sim.json`).
//!
//! Every bench binary (`simbench`, `servebench`) records its
//! measurements by appending one entry to a shared JSON array, so
//! successive PRs accumulate history instead of erasing it. The JSON is
//! hand-rolled: the workspace deliberately has no serde.

use std::path::Path;

/// Escapes a string for embedding in a JSON string literal (control
/// characters are replaced, not escaped — labels are ASCII in practice).
pub fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => "?".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Appends one entry (a serialized JSON object, typically indented two
/// spaces) to the trajectory array at `path`, creating the file when
/// missing and wrapping a legacy single-object snapshot into the array
/// on first contact. Never erases prior entries.
///
/// # Errors
///
/// Propagates I/O errors from reading or writing `path`.
pub fn append_entry(path: &Path, entry: &str) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let trimmed = existing.trim();
    let json = if trimmed.is_empty() {
        format!("[\n{entry}\n]\n")
    } else if let Some(body) = trimmed.strip_suffix(']') {
        let body = body.trim_end().trim_end_matches(',');
        if body.trim() == "[" {
            format!("[\n{entry}\n]\n")
        } else {
            format!("{body},\n{entry}\n]\n")
        }
    } else if trimmed.ends_with('}') {
        // Legacy pre-trajectory snapshot (a single object): keep it as the
        // first element so history survives the format change.
        format!("[\n{trimmed},\n{entry}\n]\n")
    } else {
        eprintln!(
            "warning: {} is neither a JSON array nor an object; starting a fresh trajectory",
            path.display()
        );
        format!("[\n{entry}\n]\n")
    };
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows_an_array_and_wraps_legacy_objects() {
        let dir = std::env::temp_dir().join(format!("hsu-traj-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let _ = std::fs::remove_file(&path);

        append_entry(&path, "  { \"pr\": \"a\" }").unwrap();
        append_entry(&path, "  { \"pr\": \"b\" }").unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got.matches("\"pr\"").count(), 2);
        assert!(got.trim_start().starts_with('[') && got.trim_end().ends_with(']'));

        // Legacy single-object file gets wrapped, history preserved.
        std::fs::write(&path, "{ \"old\": 1 }\n").unwrap();
        append_entry(&path, "  { \"pr\": \"c\" }").unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert!(got.contains("\"old\"") && got.contains("\"pr\""));
        assert!(got.trim_start().starts_with('['));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x?y");
    }
}
