use hsu_kernels::{btree::*, Variant};
use hsu_sim::trace::OpClass;
use hsu_sim::{config::GpuConfig, Gpu};

fn show(name: &str, r: &hsu_sim::SimReport) {
    println!("== {name}: cycles {}", r.cycles);
    for c in OpClass::ALL {
        if r.issued[c.index()] > 0 {
            println!(
                "  {:10} issued {:9} weighted {:9}",
                c.label(),
                r.issued[c.index()],
                r.issued_weighted[c.index()]
            );
        }
    }
    println!(
        "  L1 lsu {} rt {} miss {:.3} | dram {} | rt-instr {} isa {} stalls {} occ {:.2}",
        r.memory.l1_lsu_accesses,
        r.memory.l1_rt_accesses,
        r.l1_miss_rate(),
        r.memory.dram.accesses,
        r.rt.warp_instructions,
        r.rt.isa_instructions,
        r.rt.dispatch_stalls,
        r.rt.mean_occupancy()
    );
}

fn main() {
    let bt = BtreeWorkload::build(&BtreeParams {
        keys: 200_000,
        queries: 8192,
        branch: 256,
        seed: 7,
    });
    let gpu = Gpu::new(GpuConfig {
        num_sms: 8,
        ..GpuConfig::small()
    });
    show("btree-hsu", &gpu.run(&bt.trace(Variant::Hsu)).unwrap());
    show(
        "btree-base",
        &gpu.run(&bt.trace(Variant::Baseline)).unwrap(),
    );
}
