use hsu_datasets::{Dataset, DatasetId};
use hsu_kernels::{btree::*, flann::*, Variant};
use hsu_sim::trace::OpClass;
use hsu_sim::{config::GpuConfig, Gpu};

fn show(name: &str, r: &hsu_sim::SimReport) {
    println!("== {name}: cycles {}", r.cycles);
    for c in OpClass::ALL {
        if r.issued[c.index()] > 0 {
            println!(
                "  {:10} issued {:9} weighted {:9}",
                c.label(),
                r.issued[c.index()],
                r.issued_weighted[c.index()]
            );
        }
    }
    println!(
        "  L1 lsu {} rt {} miss {:.3} | dram {} | rt-isa {} pipe-busy {}",
        r.memory.l1_lsu_accesses,
        r.memory.l1_rt_accesses,
        r.l1_miss_rate(),
        r.memory.dram.accesses,
        r.rt.isa_instructions,
        r.rt.pipeline.issue_busy_cycles
    );
}

fn main() {
    let data = Dataset::generate_scaled(DatasetId::Bunny, 7, Some(15000))
        .points()
        .unwrap()
        .clone();
    let wl = FlannWorkload::build_from_points(
        &FlannParams {
            points: 15000,
            queries: 16384,
            k: 5,
            checks: 32,
            seed: 7,
        },
        &data,
    );
    let gpu = Gpu::new(GpuConfig {
        num_sms: 8,
        ..GpuConfig::small()
    });
    show("flann-hsu", &gpu.run(&wl.trace(Variant::Hsu)).unwrap());
    show(
        "flann-base",
        &gpu.run(&wl.trace(Variant::Baseline)).unwrap(),
    );

    let bt = BtreeWorkload::build(&BtreeParams {
        keys: 200_000,
        queries: 32768,
        branch: 256,
        seed: 7,
    });
    show("btree-hsu", &gpu.run(&bt.trace(Variant::Hsu)).unwrap());
    show(
        "btree-base",
        &gpu.run(&bt.trace(Variant::Baseline)).unwrap(),
    );
}
