//! Throughput of the cycle-level simulator itself, plus an end-to-end
//! HSU-vs-baseline pair on a small BVH-NN workload (the Fig. 9 mechanism in
//! microbenchmark form).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsu_kernels::bvhnn::{BvhnnParams, BvhnnWorkload};
use hsu_kernels::Variant;
use hsu_sim::config::GpuConfig;
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};
use hsu_sim::Gpu;

fn synthetic_kernel(threads: usize) -> KernelTrace {
    let mut k = KernelTrace::new("synthetic");
    for i in 0..threads as u64 {
        let mut t = ThreadTrace::new();
        t.push(ThreadOp::Load {
            addr: i * 64,
            bytes: 16,
        });
        t.push(ThreadOp::Alu { count: 12 });
        t.push(ThreadOp::HsuRayIntersect {
            node_addr: (i % 64) * 64,
            bytes: 64,
            triangle: false,
        });
        t.push(ThreadOp::Shared { count: 2 });
        k.push_thread(t);
    }
    k
}

fn bench_sim_throughput(c: &mut Criterion) {
    let kernel = synthetic_kernel(2048);
    let gpu = Gpu::new(GpuConfig::tiny());
    c.bench_function("sim_synthetic_2k_threads", |b| {
        b.iter(|| gpu.run(black_box(&kernel)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let wl = BvhnnWorkload::build(&BvhnnParams {
        points: 1000,
        queries: 256,
        radius_scale: 1.5,
        flavor: Default::default(),
        seed: 5,
    });
    let gpu = Gpu::new(GpuConfig::tiny());
    let hsu = wl.trace(Variant::Hsu);
    let base = wl.trace(Variant::Baseline);
    c.bench_function("sim_bvhnn_hsu", |b| b.iter(|| gpu.run(black_box(&hsu))));
    c.bench_function("sim_bvhnn_baseline", |b| {
        b.iter(|| gpu.run(black_box(&base)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim_throughput, bench_end_to_end
}
criterion_main!(benches);
