//! Microbenchmarks of the distance kernels (the POINT_EUCLID /
//! POINT_ANGULAR functional semantics vs their scalar references).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsu_core::intrinsics;
use hsu_geometry::point;

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [3usize, 65, 96, 128, 784] {
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
        group.bench_with_input(BenchmarkId::new("euclid_scalar", dim), &dim, |bench, _| {
            bench.iter(|| point::euclidean_squared(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(
            BenchmarkId::new("euclid_multibeat", dim),
            &dim,
            |bench, _| bench.iter(|| point::euclid_multibeat(black_box(&a), black_box(&b))),
        );
        group.bench_with_input(
            BenchmarkId::new("angular_intrinsic", dim),
            &dim,
            |bench, _| bench.iter(|| intrinsics::angular_dist(black_box(&a), black_box(&b))),
        );
    }
    group.finish();
}

fn bench_key_compare(c: &mut Criterion) {
    let separators: Vec<f32> = (0..255).map(|i| i as f32 * 4.0).collect();
    c.bench_function("key_compare_255", |b| {
        b.iter(|| intrinsics::key_compare(black_box(511.5), black_box(&separators)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_distances, bench_key_compare
}
criterion_main!(benches);
