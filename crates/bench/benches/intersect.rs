//! Microbenchmarks of the RAY_INTERSECT functional semantics: slab box
//! tests, watertight triangle tests, and the four-box sorted variant.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsu_core::exec;
use hsu_core::node::{BoxChild, BoxNode, NodeKind, TriangleNode};
use hsu_geometry::{Aabb, Ray, Triangle, Vec3};

fn test_ray() -> Ray {
    Ray::new(Vec3::new(-1.0, 0.3, 0.2), Vec3::new(1.0, 0.12, 0.07))
}

fn bench_slab(c: &mut Criterion) {
    let ray = test_ray();
    let aabb = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
    c.bench_function("ray_box_slab", |b| {
        b.iter(|| black_box(&ray).intersect_aabb(black_box(&aabb), f32::INFINITY))
    });
}

fn bench_triangle(c: &mut Criterion) {
    let ray = test_ray();
    let tri = Triangle::new(
        Vec3::new(0.5, -1.0, -1.0),
        Vec3::new(0.5, 2.0, -1.0),
        Vec3::new(0.5, 0.0, 2.0),
    );
    c.bench_function("ray_triangle_watertight", |b| {
        b.iter(|| black_box(&tri).intersect(black_box(&ray), f32::INFINITY))
    });
}

fn bench_box_node(c: &mut Criterion) {
    let ray = test_ray();
    let node = BoxNode::new(
        (0..4)
            .map(|i| BoxChild {
                aabb: Aabb::new(
                    Vec3::new(i as f32, -0.5, -0.5),
                    Vec3::new(i as f32 + 0.8, 0.8, 0.8),
                ),
                ptr: i as u64 * 64,
                kind: NodeKind::Box,
            })
            .collect(),
    );
    c.bench_function("ray_intersect_bvh4_node", |b| {
        b.iter(|| exec::execute_box(black_box(&ray), black_box(&node), f32::INFINITY))
    });
    let tri_node = TriangleNode {
        triangle: Triangle::new(
            Vec3::new(0.5, -1.0, -1.0),
            Vec3::new(0.5, 2.0, -1.0),
            Vec3::new(0.5, 0.0, 2.0),
        ),
        triangle_id: 1,
    };
    c.bench_function("ray_intersect_triangle_node", |b| {
        b.iter(|| exec::execute_triangle(black_box(&ray), black_box(&tri_node), f32::INFINITY))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_slab, bench_triangle, bench_box_node
}
criterion_main!(benches);
