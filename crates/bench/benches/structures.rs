//! Build and search throughput of the four hierarchical data structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsu_btree::BPlusTree;
use hsu_bvh::{LbvhBuilder, PointPrimitive, SahBuilder};
use hsu_geometry::point::{Metric, PointSet};
use hsu_geometry::Vec3;
use hsu_graph::{GraphConfig, HnswGraph};
use hsu_kdtree::KdTree;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_points3(n: usize, seed: u64) -> Vec<PointPrimitive> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            PointPrimitive::new(
                i as u32,
                Vec3::new(
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ),
                0.02,
            )
        })
        .collect()
}

fn random_set(n: usize, dim: usize, seed: u64) -> PointSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    PointSet::from_rows(
        dim,
        (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn bench_bvh(c: &mut Criterion) {
    let prims = random_points3(4096, 1);
    c.bench_function("lbvh_build_4k", |b| {
        b.iter(|| LbvhBuilder::default().build(black_box(&prims)))
    });
    c.bench_function("sah_build_4k", |b| {
        b.iter(|| SahBuilder::default().build(black_box(&prims)))
    });
    let bvh = LbvhBuilder::default().build(&prims);
    c.bench_function("bvh_radius_search", |b| {
        b.iter(|| bvh.radius_search(black_box(&prims), Vec3::splat(0.5), 0.05))
    });
}

fn bench_kdtree(c: &mut Criterion) {
    let data = random_set(4096, 8, 2);
    c.bench_function("kdtree_build_4k_d8", |b| {
        b.iter(|| KdTree::build(black_box(&data), Metric::Euclidean))
    });
    let tree = KdTree::build(&data, Metric::Euclidean);
    let q = vec![0.1f32; 8];
    c.bench_function("kdtree_bbf_knn", |b| {
        b.iter(|| tree.knn_best_bin_first(black_box(&data), black_box(&q), 10, 128))
    });
}

fn bench_graph(c: &mut Criterion) {
    let data = random_set(2048, 32, 3);
    let graph = HnswGraph::build(&data, Metric::Euclidean, GraphConfig::default(), 4);
    let q = vec![0.0f32; 32];
    c.bench_function("hnsw_search_ef64", |b| {
        b.iter(|| graph.search(black_box(&data), black_box(&q), 10, 64))
    });
}

fn bench_btree(c: &mut Criterion) {
    let pairs: Vec<(u32, u64)> = (0..100_000u32).map(|k| (k * 3, k as u64)).collect();
    let tree = BPlusTree::bulk_build(pairs, 256);
    c.bench_function("btree_lookup_100k", |b| {
        b.iter(|| tree.get(black_box(149_997)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bvh, bench_kdtree, bench_graph, bench_btree
}
criterion_main!(benches);
