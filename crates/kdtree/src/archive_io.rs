//! `.hsar` payload codec for [`KdTree`] ([`hsu_archive::kind::KDTREE`]).
//!
//! Layout (little-endian):
//!
//! ```text
//! metric u8 | dim u64 | max_leaf u64
//! node_count u64
//! per node: tag u8 — 0 = Split { axis u32, value f32, left u32, right u32 }
//!                    1 = Leaf  { start u32, count u32 }
//! index_count u64 | index_count × u32
//! ```
//!
//! Split values keep their exact `f32` bit patterns, so decode → re-encode
//! is byte-identical (the parity discipline).

use hsu_archive::payload::{put_f32, put_u32, put_u64, put_u8, Cursor};
use hsu_archive::ArchiveError;
use hsu_geometry::point::Metric;

use crate::{KdNode, KdTree};

fn metric_to_u8(metric: Metric) -> u8 {
    match metric {
        Metric::Euclidean => 0,
        Metric::Angular => 1,
    }
}

fn metric_from_u8(v: u8, chunk: &str) -> Result<Metric, ArchiveError> {
    match v {
        0 => Ok(Metric::Euclidean),
        1 => Ok(Metric::Angular),
        other => Err(ArchiveError::Payload {
            chunk: chunk.into(),
            detail: format!("unknown metric tag {other}"),
        }),
    }
}

/// Encodes a tree as a `KDTREE` chunk payload.
pub fn kdtree_to_chunk(tree: &KdTree) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + tree.nodes.len() * 14 + tree.indices.len() * 4);
    put_u8(&mut buf, metric_to_u8(tree.metric));
    put_u64(&mut buf, tree.dim as u64);
    put_u64(&mut buf, tree.max_leaf as u64);
    put_u64(&mut buf, tree.nodes.len() as u64);
    for node in &tree.nodes {
        match *node {
            KdNode::Split {
                axis,
                value,
                left,
                right,
            } => {
                put_u8(&mut buf, 0);
                put_u32(&mut buf, axis);
                put_f32(&mut buf, value);
                put_u32(&mut buf, left);
                put_u32(&mut buf, right);
            }
            KdNode::Leaf { start, count } => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, start);
                put_u32(&mut buf, count);
            }
        }
    }
    put_u64(&mut buf, tree.indices.len() as u64);
    for &i in &tree.indices {
        put_u32(&mut buf, i);
    }
    buf
}

/// Decodes a `KDTREE` chunk payload; `chunk` labels errors.
pub fn kdtree_from_chunk(bytes: &[u8], chunk: &str) -> Result<KdTree, ArchiveError> {
    let fail = |detail: String| ArchiveError::Payload {
        chunk: chunk.into(),
        detail,
    };
    let mut c = Cursor::new(bytes, chunk);
    let metric = metric_from_u8(c.u8()?, chunk)?;
    let dim = c.u64()? as usize;
    let max_leaf = c.u64()? as usize;
    if dim == 0 || max_leaf == 0 {
        return Err(fail("dim and max_leaf must be positive".into()));
    }
    let node_count = c.u64()?;
    // A node is at least 9 bytes (tag + leaf fields).
    let node_count = c.count(node_count, 9, "node")?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        match c.u8()? {
            0 => {
                let axis = c.u32()?;
                let value = c.f32()?;
                let left = c.u32()?;
                let right = c.u32()?;
                if axis as usize >= dim {
                    return Err(fail(format!("split axis {axis} outside dim {dim}")));
                }
                nodes.push(KdNode::Split {
                    axis,
                    value,
                    left,
                    right,
                });
            }
            1 => {
                let start = c.u32()?;
                let count = c.u32()?;
                nodes.push(KdNode::Leaf { start, count });
            }
            other => return Err(fail(format!("unknown node tag {other}"))),
        }
    }
    let index_count = c.u64()?;
    let index_count = c.count(index_count, 4, "index")?;
    let mut indices = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        indices.push(c.u32()?);
    }
    c.finish()?;
    // Structural checks: children and leaf ranges must stay in bounds.
    for node in &nodes {
        match *node {
            KdNode::Split { left, right, .. } => {
                if left as usize >= nodes.len() || right as usize >= nodes.len() {
                    return Err(fail(format!(
                        "split children {left}/{right} outside {} nodes",
                        nodes.len()
                    )));
                }
            }
            KdNode::Leaf { start, count } => {
                if (start as usize) + (count as usize) > indices.len() {
                    return Err(fail(format!(
                        "leaf range {start}+{count} outside {} indices",
                        indices.len()
                    )));
                }
            }
        }
    }
    Ok(KdTree {
        nodes,
        indices,
        metric,
        dim,
        max_leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_geometry::point::PointSet;

    #[test]
    fn kdtree_chunk_round_trips_with_byte_parity() {
        let data = PointSet::from_rows(
            3,
            (0..300).map(|i| ((i * 37) % 101) as f32 * 0.13).collect(),
        );
        let tree = KdTree::build_with(&data, Metric::Euclidean, 4, None);
        let bytes = kdtree_to_chunk(&tree);
        let back = kdtree_from_chunk(&bytes, "t").expect("decode");
        assert_eq!(back, tree);
        assert_eq!(kdtree_to_chunk(&back), bytes, "re-encode parity");
    }

    #[test]
    fn corrupt_node_tag_is_a_typed_payload_error() {
        let data = PointSet::from_rows(2, (0..64).map(|i| i as f32).collect());
        let tree = KdTree::build(&data, Metric::Euclidean);
        let mut bytes = kdtree_to_chunk(&tree);
        bytes[25] = 9; // first node tag
        let err = kdtree_from_chunk(&bytes, "t").unwrap_err();
        assert_eq!(err.kind(), "payload");
    }
}
