//! FLANN-style k-d trees for approximate nearest-neighbour search.
//!
//! The FLANN workload (§V-A) uses a k-d tree index: internal nodes split
//! N-dimensional space on a single axis ("only a single scalar subtraction
//! and comparison", §VI-F), and leaves hold candidate points whose distances
//! the HSU's `POINT_EUCLID` / `POINT_ANGULAR` instructions accelerate. This
//! crate provides:
//!
//! * [`KdTree`] — a single tree with variance-based axis selection and
//!   median splits,
//! * [`KdForest`] — FLANN's randomized multi-tree index (each tree picks a
//!   random axis among the highest-variance dimensions),
//! * exact backtracking search and approximate *best-bin-first* search with
//!   a bounded `checks` budget, both reporting the traversal counters the
//!   trace generators charge.
//!
//! # Examples
//!
//! ```
//! use hsu_geometry::point::{Metric, PointSet};
//! use hsu_kdtree::KdTree;
//!
//! let data = PointSet::from_rows(2, vec![0.0, 0.0, 1.0, 1.0, 4.0, 4.0]);
//! let tree = KdTree::build(&data, Metric::Euclidean);
//! let (nearest, _) = tree.nearest_exact(&data, &[0.9, 1.2]);
//! assert_eq!(nearest.unwrap().0, 1);
//! ```

#![warn(missing_docs)]

pub mod archive_io;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hsu_geometry::point::{Metric, PointSet};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Search-effort counters, used by the trace generators to charge traversal
/// and distance instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KdStats {
    /// Internal-node visits (one scalar compare each — the cheap traversal
    /// step the paper chose *not* to offload, §VI-F).
    pub splits_visited: u64,
    /// Leaves reached.
    pub leaves_visited: u64,
    /// Full distance computations performed (HSU-accelerable work).
    pub distance_tests: u64,
}

/// One k-d tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KdNode {
    /// Axis-aligned split plane.
    Split {
        /// Dimension the plane splits.
        axis: u32,
        /// Points with `p[axis] < value` go left.
        value: f32,
        /// Left child index.
        left: u32,
        /// Right child index.
        right: u32,
    },
    /// A leaf holding `count` candidate indices starting at `start` in the
    /// permutation array.
    Leaf {
        /// First slot in the permutation array.
        start: u32,
        /// Number of candidates.
        count: u32,
    },
}

/// A single k-d tree over a [`PointSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    indices: Vec<u32>,
    metric: Metric,
    dim: usize,
    max_leaf: usize,
}

/// A neighbour candidate: `(point index, distance)`.
pub type KdNeighbor = (u32, f32);

impl KdTree {
    /// Builds a tree with deterministic axis selection (highest variance) and
    /// median splits. Leaves hold at most 8 points, FLANN's default bucket.
    pub fn build(data: &PointSet, metric: Metric) -> Self {
        Self::build_with(data, metric, 8, None)
    }

    /// Builds a tree with `max_leaf` bucket size; when `rng` is provided the
    /// split axis is drawn randomly from the five highest-variance dimensions
    /// (the FLANN randomized-forest rule).
    ///
    /// # Panics
    ///
    /// Panics if `max_leaf` is zero.
    pub fn build_with(
        data: &PointSet,
        metric: Metric,
        max_leaf: usize,
        mut rng: Option<&mut ChaCha8Rng>,
    ) -> Self {
        assert!(max_leaf > 0, "leaf bucket must hold at least one point");
        let mut tree = KdTree {
            nodes: Vec::new(),
            indices: (0..data.len() as u32).collect(),
            metric,
            dim: data.dim(),
            max_leaf,
        };
        if data.is_empty() {
            return tree;
        }
        tree.nodes.push(KdNode::Leaf { start: 0, count: 0 }); // root placeholder
        tree.split_range(data, 0, 0, data.len(), &mut rng);
        tree
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node array (root at index 0); exposed for the trace generators.
    pub fn nodes(&self) -> &[KdNode] {
        &self.nodes
    }

    /// The leaf-order permutation of point indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The metric the tree was built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    fn split_range(
        &mut self,
        data: &PointSet,
        node: usize,
        start: usize,
        end: usize,
        rng: &mut Option<&mut ChaCha8Rng>,
    ) {
        let n = end - start;
        if n <= self.max_leaf {
            self.nodes[node] = KdNode::Leaf {
                start: start as u32,
                count: n as u32,
            };
            return;
        }
        // Axis selection: compute per-dimension variance over the range.
        let mut mean = vec![0.0f64; self.dim];
        for &i in &self.indices[start..end] {
            for (m, &v) in mean.iter_mut().zip(data.point(i as usize)) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; self.dim];
        for &i in &self.indices[start..end] {
            for ((v, m), &x) in var.iter_mut().zip(&mean).zip(data.point(i as usize)) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let axis = match rng {
            Some(rng) => {
                // Random among the top-5 variance axes (FLANN's rule).
                let mut order: Vec<usize> = (0..self.dim).collect();
                order.sort_by(|&a, &b| var[b].total_cmp(&var[a]));
                let top = order[..order.len().min(5)].to_vec();
                top[rng.gen_range(0..top.len())]
            }
            None => (0..self.dim)
                .max_by(|&a, &b| var[a].total_cmp(&var[b]))
                .unwrap_or(0),
        };

        // Median split along the chosen axis.
        let mid = start + n / 2;
        self.indices[start..end].select_nth_unstable_by(n / 2, |&a, &b| {
            data.point(a as usize)[axis].total_cmp(&data.point(b as usize)[axis])
        });
        let split_value = data.point(self.indices[mid] as usize)[axis];

        // Degenerate guard: if every value equals the median the partition
        // may be empty on one side; fall back to a leaf split in half.
        if self.indices[start..mid].is_empty() || self.indices[mid..end].is_empty() {
            self.nodes[node] = KdNode::Leaf {
                start: start as u32,
                count: n as u32,
            };
            return;
        }

        let left = self.nodes.len() as u32;
        self.nodes.push(KdNode::Leaf { start: 0, count: 0 });
        let right = self.nodes.len() as u32;
        self.nodes.push(KdNode::Leaf { start: 0, count: 0 });
        self.nodes[node] = KdNode::Split {
            axis: axis as u32,
            value: split_value,
            left,
            right,
        };
        self.split_range(data, left as usize, start, mid, rng);
        self.split_range(data, right as usize, mid, end, rng);
    }

    /// Exact nearest neighbour by backtracking with plane-distance pruning.
    /// Only supported for the Euclidean metric (angular pruning bounds are
    /// not admissible on un-normalized planes); for angular data use
    /// [`KdTree::knn_best_bin_first`].
    ///
    /// Returns `None` for an empty tree.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension mismatches or the metric is angular.
    pub fn nearest_exact(&self, data: &PointSet, query: &[f32]) -> (Option<KdNeighbor>, KdStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert_eq!(
            self.metric,
            Metric::Euclidean,
            "exact backtracking requires the Euclidean metric"
        );
        let mut stats = KdStats::default();
        if self.nodes.is_empty() {
            return (None, stats);
        }
        let mut best: Option<KdNeighbor> = None;
        self.exact_descend(data, query, 0, &mut best, &mut stats);
        (best, stats)
    }

    fn exact_descend(
        &self,
        data: &PointSet,
        query: &[f32],
        node: u32,
        best: &mut Option<KdNeighbor>,
        stats: &mut KdStats,
    ) {
        match self.nodes[node as usize] {
            KdNode::Leaf { start, count } => {
                stats.leaves_visited += 1;
                for s in start..start + count {
                    let idx = self.indices[s as usize];
                    stats.distance_tests += 1;
                    let d = self.metric.distance(query, data.point(idx as usize));
                    if best.is_none_or(|(_, bd)| d < bd) {
                        *best = Some((idx, d));
                    }
                }
            }
            KdNode::Split {
                axis,
                value,
                left,
                right,
            } => {
                stats.splits_visited += 1;
                let diff = query[axis as usize] - value;
                let (near, far) = if diff < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.exact_descend(data, query, near, best, stats);
                // Backtrack if the plane is closer than the best distance.
                if best.is_none_or(|(_, bd)| diff * diff < bd) {
                    self.exact_descend(data, query, far, best, stats);
                }
            }
        }
    }

    /// Exact k-nearest neighbours by backtracking (Euclidean only), closest
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, the query dimension mismatches, or the metric
    /// is angular.
    pub fn knn_exact(
        &self,
        data: &PointSet,
        query: &[f32],
        k: usize,
    ) -> (Vec<KdNeighbor>, KdStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert_eq!(
            self.metric,
            Metric::Euclidean,
            "exact search requires Euclidean"
        );
        let mut stats = KdStats::default();
        if self.nodes.is_empty() {
            return (Vec::new(), stats);
        }
        let mut best: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new(); // max-heap
        self.knn_descend(data, query, 0, k, &mut best, &mut stats);
        let mut out: Vec<KdNeighbor> = best.into_iter().map(|(OrdF32(d), i)| (i, d)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        (out, stats)
    }

    fn knn_descend(
        &self,
        data: &PointSet,
        query: &[f32],
        node: u32,
        k: usize,
        best: &mut BinaryHeap<(OrdF32, u32)>,
        stats: &mut KdStats,
    ) {
        match self.nodes[node as usize] {
            KdNode::Leaf { start, count } => {
                stats.leaves_visited += 1;
                for s in start..start + count {
                    let idx = self.indices[s as usize];
                    stats.distance_tests += 1;
                    let d = self.metric.distance(query, data.point(idx as usize));
                    if best.len() < k {
                        best.push((OrdF32(d), idx));
                    } else if let Some(&(OrdF32(w), _)) = best.peek() {
                        if d < w {
                            best.pop();
                            best.push((OrdF32(d), idx));
                        }
                    }
                }
            }
            KdNode::Split {
                axis,
                value,
                left,
                right,
            } => {
                stats.splits_visited += 1;
                let diff = query[axis as usize] - value;
                let (near, far) = if diff < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.knn_descend(data, query, near, k, best, stats);
                let worst = best
                    .peek()
                    .map(|&(OrdF32(w), _)| w)
                    .unwrap_or(f32::INFINITY);
                if best.len() < k || diff * diff < worst {
                    self.knn_descend(data, query, far, k, best, stats);
                }
            }
        }
    }

    /// All points within squared distance `radius_sq` of `query` (Euclidean),
    /// with their distances, unordered.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension mismatches or the metric is angular.
    pub fn range_search(
        &self,
        data: &PointSet,
        query: &[f32],
        radius_sq: f32,
    ) -> (Vec<KdNeighbor>, KdStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert_eq!(
            self.metric,
            Metric::Euclidean,
            "range search requires Euclidean"
        );
        let mut out = Vec::new();
        let mut stats = KdStats::default();
        if self.nodes.is_empty() {
            return (out, stats);
        }
        let mut stack = vec![0u32];
        while let Some(node) = stack.pop() {
            match self.nodes[node as usize] {
                KdNode::Leaf { start, count } => {
                    stats.leaves_visited += 1;
                    for s in start..start + count {
                        let idx = self.indices[s as usize];
                        stats.distance_tests += 1;
                        let d = self.metric.distance(query, data.point(idx as usize));
                        if d <= radius_sq {
                            out.push((idx, d));
                        }
                    }
                }
                KdNode::Split {
                    axis,
                    value,
                    left,
                    right,
                } => {
                    stats.splits_visited += 1;
                    let diff = query[axis as usize] - value;
                    let (near, far) = if diff < 0.0 {
                        (left, right)
                    } else {
                        (right, left)
                    };
                    stack.push(near);
                    if diff * diff <= radius_sq {
                        stack.push(far);
                    }
                }
            }
        }
        (out, stats)
    }

    /// Approximate k-nearest-neighbour search with FLANN's best-bin-first
    /// strategy: descend greedily, queue the unexplored branches by plane
    /// distance, and stop after `checks` distance tests.
    ///
    /// Results are sorted closest-first. Works for both metrics (the queue
    /// priority uses the axis offset, which is a heuristic — not a bound —
    /// under the angular metric, as in FLANN).
    ///
    /// # Panics
    ///
    /// Panics if the query dimension mismatches or `k` is zero.
    pub fn knn_best_bin_first(
        &self,
        data: &PointSet,
        query: &[f32],
        k: usize,
        checks: usize,
    ) -> (Vec<KdNeighbor>, KdStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert!(k > 0, "k must be positive");
        let mut stats = KdStats::default();
        let mut results: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new(); // max-heap by distance
        if self.nodes.is_empty() {
            return (Vec::new(), stats);
        }
        let mut frontier: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        frontier.push(Reverse((OrdF32(0.0), 0)));
        let mut checked = 0usize;
        // Scratch for the candidate-parallel leaf refine, reused across
        // every leaf this search reaches.
        let mut rows: Vec<f32> = Vec::new();
        let mut pairs: Vec<(f32, f32)> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();
        while let Some(Reverse((_, start_node))) = frontier.pop() {
            if checked >= checks {
                break;
            }
            // Greedy descent to a leaf, queueing far branches.
            let mut node = start_node;
            loop {
                match self.nodes[node as usize] {
                    KdNode::Split {
                        axis,
                        value,
                        left,
                        right,
                    } => {
                        stats.splits_visited += 1;
                        let diff = query[axis as usize] - value;
                        let (near, far) = if diff < 0.0 {
                            (left, right)
                        } else {
                            (right, left)
                        };
                        frontier.push(Reverse((OrdF32(diff * diff), far)));
                        node = near;
                    }
                    KdNode::Leaf { start, count } => {
                        stats.leaves_visited += 1;
                        // The whole bucket's distances come from one
                        // gathered SoA batch (bit-identical to the scalar
                        // metric per candidate); the `checks` budget is
                        // only consulted between leaves, so batching the
                        // bucket changes neither results nor counters.
                        let ids = &self.indices[start as usize..(start + count) as usize];
                        rows.clear();
                        hsu_geometry::batch::gather_rows(data.as_flat(), self.dim, ids, &mut rows);
                        dists.clear();
                        hsu_geometry::batch::metric_to_rows(
                            self.metric,
                            query,
                            &rows,
                            &mut pairs,
                            &mut dists,
                        );
                        stats.distance_tests += ids.len() as u64;
                        checked += ids.len();
                        for (&idx, &d) in ids.iter().zip(&dists) {
                            results.push((OrdF32(d), idx));
                            if results.len() > k {
                                results.pop();
                            }
                        }
                        break;
                    }
                }
            }
        }
        let mut out: Vec<KdNeighbor> = results.into_iter().map(|(OrdF32(d), i)| (i, d)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        (out, stats)
    }

    /// Approximate k-nearest-neighbour search for a flat batch of
    /// queries (`queries.len()` must be a multiple of the tree
    /// dimension). Each query is answered exactly as a standalone
    /// [`KdTree::knn_best_bin_first`] call would answer it, so batch
    /// results are bit-identical to per-query results in any order.
    ///
    /// # Panics
    ///
    /// Panics if the flat query buffer is not a whole number of
    /// `dim`-sized rows, or `k` is zero.
    pub fn knn_batch(
        &self,
        data: &PointSet,
        queries: &[f32],
        k: usize,
        checks: usize,
    ) -> Vec<(Vec<KdNeighbor>, KdStats)> {
        assert!(
            queries.len().is_multiple_of(self.dim.max(1)),
            "flat query buffer must be a whole number of rows"
        );
        queries
            .chunks_exact(self.dim)
            .map(|q| self.knn_best_bin_first(data, q, k, checks))
            .collect()
    }
}

/// A forest of randomized k-d trees searched jointly — FLANN's
/// high-dimensional index.
#[derive(Debug, Clone)]
pub struct KdForest {
    trees: Vec<KdTree>,
}

impl KdForest {
    /// Builds `n_trees` randomized trees with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees` is zero.
    pub fn build(data: &PointSet, metric: Metric, n_trees: usize, seed: u64) -> Self {
        assert!(n_trees > 0, "forest needs at least one tree");
        use rand::SeedableRng;
        let trees = (0..n_trees)
            .map(|t| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(t as u64));
                KdTree::build_with(data, metric, 8, Some(&mut rng))
            })
            .collect();
        KdForest { trees }
    }

    /// The individual trees.
    pub fn trees(&self) -> &[KdTree] {
        &self.trees
    }

    /// Joint best-bin-first search: the `checks` budget is split evenly
    /// across trees and duplicate candidates are merged.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn knn(
        &self,
        data: &PointSet,
        query: &[f32],
        k: usize,
        checks: usize,
    ) -> (Vec<KdNeighbor>, KdStats) {
        assert!(k > 0, "k must be positive");
        let per_tree = (checks / self.trees.len()).max(1);
        let mut total = KdStats::default();
        let mut merged: Vec<KdNeighbor> = Vec::new();
        for tree in &self.trees {
            let (mut found, stats) = tree.knn_best_bin_first(data, query, k, per_tree);
            total.splits_visited += stats.splits_visited;
            total.leaves_visited += stats.leaves_visited;
            total.distance_tests += stats.distance_tests;
            merged.append(&mut found);
        }
        merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        merged.dedup_by_key(|n| n.0);
        merged.sort_by(|a, b| a.1.total_cmp(&b.1));
        merged.truncate(k);
        (merged, total)
    }
}

/// Total-ordered f32 wrapper for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF32(f32);

impl Eq for OrdF32 {}
impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        PointSet::from_rows(dim, data)
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let data = random_set(500, 4, 1);
        let tree = KdTree::build(&data, Metric::Euclidean);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let q: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (got, stats) = tree.nearest_exact(&data, &q);
            let expect = data.nearest_brute_force(&q, Metric::Euclidean).unwrap();
            assert_eq!(got.unwrap().0 as usize, expect.0);
            // Pruning must do better than brute force.
            assert!(stats.distance_tests < 500);
        }
    }

    #[test]
    fn bbf_recall_is_high_with_enough_checks() {
        let data = random_set(1000, 8, 3);
        let tree = KdTree::build(&data, Metric::Euclidean);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut hits = 0;
        let total = 50;
        for _ in 0..total {
            let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (approx, _) = tree.knn_best_bin_first(&data, &q, 1, 256);
            let exact = data.nearest_brute_force(&q, Metric::Euclidean).unwrap();
            if approx.first().map(|&(i, _)| i as usize) == Some(exact.0) {
                hits += 1;
            }
        }
        assert!(hits * 10 >= total * 8, "recall {hits}/{total} below 80%");
    }

    #[test]
    fn bbf_respects_checks_budget() {
        let data = random_set(2000, 8, 5);
        let tree = KdTree::build(&data, Metric::Euclidean);
        let q = vec![0.0f32; 8];
        let (_, stats) = tree.knn_best_bin_first(&data, &q, 5, 64);
        // The budget is enforced at leaf granularity (bucket size 8).
        assert!(stats.distance_tests <= 64 + 8);
    }

    #[test]
    fn knn_returns_sorted_unique() {
        let data = random_set(300, 4, 6);
        let tree = KdTree::build(&data, Metric::Euclidean);
        let (knn, _) = tree.knn_best_bin_first(&data, &[0.1, 0.2, -0.1, 0.0], 10, 200);
        assert_eq!(knn.len(), 10);
        assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
        let mut ids: Vec<u32> = knn.iter().map(|n| n.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn knn_batch_matches_per_query_search() {
        for metric in [Metric::Euclidean, Metric::Angular] {
            let data = random_set(900, 12, 9);
            let tree = KdTree::build(&data, metric);
            let mut rng = ChaCha8Rng::seed_from_u64(10);
            let flat: Vec<f32> = (0..7 * 12).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let batched = tree.knn_batch(&data, &flat, 5, 128);
            assert_eq!(batched.len(), 7);
            for (q, (hits, stats)) in flat.chunks_exact(12).zip(&batched) {
                let (solo_hits, solo_stats) = tree.knn_best_bin_first(&data, q, 5, 128);
                assert_eq!(solo_stats, *stats);
                assert_eq!(solo_hits.len(), hits.len());
                for (a, b) in solo_hits.iter().zip(hits) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
        }
    }

    #[test]
    fn forest_beats_single_tree_recall() {
        let data = random_set(1500, 16, 7);
        let tree = KdTree::build(&data, Metric::Euclidean);
        let forest = KdForest::build(&data, Metric::Euclidean, 4, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let (mut single, mut multi) = (0, 0);
        let total = 60;
        for _ in 0..total {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let exact = data.nearest_brute_force(&q, Metric::Euclidean).unwrap().0;
            let (s, _) = tree.knn_best_bin_first(&data, &q, 1, 128);
            let (m, _) = forest.knn(&data, &q, 1, 128);
            if s.first().map(|&(i, _)| i as usize) == Some(exact) {
                single += 1;
            }
            if m.first().map(|&(i, _)| i as usize) == Some(exact) {
                multi += 1;
            }
        }
        assert!(multi >= single, "forest {multi} < single tree {single}");
    }

    #[test]
    fn knn_exact_matches_brute_force() {
        let data = random_set(600, 5, 13);
        let tree = KdTree::build(&data, Metric::Euclidean);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        for _ in 0..30 {
            let q: Vec<f32> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (got, stats) = tree.knn_exact(&data, &q, 7);
            let expect = data.k_nearest_brute_force(&q, 7, Metric::Euclidean);
            assert_eq!(got.len(), 7);
            for (g, e) in got.iter().zip(&expect) {
                assert!(
                    (g.1 - e.1).abs() <= 1e-5 * (1.0 + e.1),
                    "{got:?} vs {expect:?}"
                );
            }
            assert!(stats.distance_tests < 600, "pruning must beat brute force");
        }
    }

    #[test]
    fn range_search_matches_brute_force() {
        let data = random_set(500, 3, 15);
        let tree = KdTree::build(&data, Metric::Euclidean);
        let q = [0.1f32, -0.2, 0.3];
        let r2 = 0.25f32;
        let (mut got, _) = tree.range_search(&data, &q, r2);
        got.sort_by_key(|&(i, _)| i);
        let expect: Vec<u32> = data
            .iter()
            .enumerate()
            .filter(|(_, c)| hsu_geometry::point::euclidean_squared(&q, c) <= r2)
            .map(|(i, _)| i as u32)
            .collect();
        let got_ids: Vec<u32> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(got_ids, expect);
    }

    #[test]
    fn angular_metric_search_works() {
        let data = random_set(400, 8, 9);
        let tree = KdTree::build(&data, Metric::Angular);
        let (knn, _) = tree.knn_best_bin_first(&data, &[0.5; 8], 3, 400);
        assert_eq!(knn.len(), 3);
        // With an exhaustive budget BBF degenerates to brute force: exact.
        let exact = data.k_nearest_brute_force(&[0.5; 8], 3, Metric::Angular);
        assert_eq!(knn[0].0 as usize, exact[0].0);
    }

    #[test]
    fn empty_and_tiny_sets() {
        let empty = PointSet::empty(3);
        let tree = KdTree::build(&empty, Metric::Euclidean);
        assert_eq!(tree.nearest_exact(&empty, &[0.0; 3]).0, None);
        assert!(tree
            .knn_best_bin_first(&empty, &[0.0; 3], 1, 10)
            .0
            .is_empty());

        let one = PointSet::from_rows(3, vec![1.0, 2.0, 3.0]);
        let tree = KdTree::build(&one, Metric::Euclidean);
        let (n, _) = tree.nearest_exact(&one, &[0.0; 3]);
        assert_eq!(n.unwrap().0, 0);
    }

    #[test]
    fn duplicate_points_build() {
        let data = PointSet::from_rows(2, [1.0, 1.0].repeat(100));
        let tree = KdTree::build(&data, Metric::Euclidean);
        let (n, _) = tree.nearest_exact(&data, &[1.0, 1.0]);
        assert_eq!(n.unwrap().1, 0.0);
    }

    #[test]
    fn stats_accumulate_in_forest() {
        let data = random_set(500, 8, 10);
        let forest = KdForest::build(&data, Metric::Euclidean, 3, 11);
        let (_, stats) = forest.knn(&data, &[0.0; 8], 4, 90);
        assert!(stats.distance_tests > 0);
        assert!(stats.splits_visited > 0);
        assert_eq!(forest.trees().len(), 3);
    }
}
