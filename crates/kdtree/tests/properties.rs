//! Property-based tests of k-d tree construction and search.

use hsu_geometry::point::{Metric, PointSet};
use hsu_kdtree::{KdForest, KdNode, KdTree};
use proptest::prelude::*;

fn arb_set(max_points: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec(-1000i32..1000, dim..=max_points * dim).prop_map(move |vals| {
        let n = vals.len() / dim;
        let data: Vec<f32> = vals[..n * dim].iter().map(|&v| v as f32 * 0.01).collect();
        PointSet::from_rows(dim, data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_nearest_matches_brute_force(set in arb_set(300, 3), qi in 0usize..100) {
        let tree = KdTree::build(&set, Metric::Euclidean);
        let q: Vec<f32> = set.point(qi % set.len()).to_vec();
        let (found, _) = tree.nearest_exact(&set, &q);
        let (_, bd) = set.nearest_brute_force(&q, Metric::Euclidean).unwrap();
        let (_, fd) = found.unwrap();
        prop_assert!((fd - bd).abs() <= 1e-5 * (1.0 + bd));
    }

    #[test]
    fn indices_are_a_permutation(set in arb_set(400, 4)) {
        let tree = KdTree::build(&set, Metric::Euclidean);
        let mut idx: Vec<u32> = tree.indices().to_vec();
        idx.sort_unstable();
        let expect: Vec<u32> = (0..set.len() as u32).collect();
        prop_assert_eq!(idx, expect);
    }

    #[test]
    fn split_planes_partition_points(set in arb_set(300, 3)) {
        let tree = KdTree::build(&set, Metric::Euclidean);
        // For every split node, left-subtree leaf points satisfy p[axis] <=
        // value... (median split puts strictly-less left; duplicates may sit
        // either side of equal values, so check the weak inequality against
        // the left side only).
        fn leaves(tree: &KdTree, node: u32, out: &mut Vec<(u32, u32)>) {
            match tree.nodes()[node as usize] {
                KdNode::Leaf { start, count } => out.push((start, count)),
                KdNode::Split { left, right, .. } => {
                    leaves(tree, left, out);
                    leaves(tree, right, out);
                }
            }
        }
        for (i, node) in tree.nodes().iter().enumerate() {
            if let KdNode::Split { axis, value, left, .. } = *node {
                let mut left_leaves = Vec::new();
                leaves(&tree, left, &mut left_leaves);
                for (start, count) in left_leaves {
                    for s in start..start + count {
                        let p = set.point(tree.indices()[s as usize] as usize);
                        prop_assert!(
                            p[axis as usize] <= value,
                            "node {i}: left point {} > split {value}",
                            p[axis as usize]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bbf_with_full_budget_is_exact(set in arb_set(150, 3)) {
        let tree = KdTree::build(&set, Metric::Euclidean);
        let q: Vec<f32> = set.point(0).to_vec();
        let (knn, _) = tree.knn_best_bin_first(&set, &q, 1, set.len() + 8);
        let (bi, bd) = set.nearest_brute_force(&q, Metric::Euclidean).unwrap();
        prop_assert!((knn[0].1 - bd).abs() <= 1e-6 * (1.0 + bd), "{} vs {}", knn[0].0, bi);
    }

    #[test]
    fn forest_results_are_sorted_unique(set in arb_set(250, 4), k in 1usize..10) {
        let forest = KdForest::build(&set, Metric::Euclidean, 3, 9);
        let q: Vec<f32> = set.point(set.len() / 2).to_vec();
        let (knn, _) = forest.knn(&set, &q, k, 256);
        prop_assert!(knn.len() <= k);
        prop_assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
        let mut ids: Vec<u32> = knn.iter().map(|n| n.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), knn.len());
    }
}
