//! B+-tree batched point lookups (paper §V-A, Rodinia `b+tree`).
//!
//! Rodinia serves each query with a whole thread group that scans a node's
//! separators in parallel (load rounds + ballot + sync). The HSU lowering
//! replaces that entire warp-wide scan with a single lane's `KEY_COMPARE`
//! chain — `ceil(n/36)` instructions per node. The paper notes this workload
//! has the smallest offloadable share (§VI-C), so its speedup is the
//! smallest.

use hsu_btree::{BPlusTree, BtNode};
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};

use crate::layout::btree_node_addr;
use crate::lowering::{emit_key_compare, Variant};

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct BtreeParams {
    /// Number of key-value pairs.
    pub keys: usize,
    /// Number of lookups.
    pub queries: usize,
    /// Branch factor (Rodinia: 256).
    pub branch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BtreeParams {
    fn default() -> Self {
        BtreeParams {
            keys: 10_000,
            queries: 512,
            branch: 256,
            seed: 1,
        }
    }
}

/// Per-thread lookup events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Internal-node separator scan.
    Internal { node: u32, separators: u32 },
    /// Leaf binary search over `keys` keys.
    Leaf { node: u32, keys: u32 },
}

/// A prepared B+-tree lookup workload.
#[derive(Debug)]
pub struct BtreeWorkload {
    events: Vec<Vec<Event>>,
    branch: usize,
    /// Fraction of lookups answered correctly against `BTreeMap` (must be 1).
    pub correctness: f64,
}

impl BtreeWorkload {
    /// Builds the tree from uniform random keys and records the lookups.
    pub fn build(params: &BtreeParams) -> Self {
        let (pairs, lookups) = Self::generate_inputs(params);
        Self::build_from_pairs(pairs, &lookups, params.branch)
    }

    /// The seeded input streams `build` draws: uniform random 24-bit keyed
    /// pairs and a 70 %-present lookup mix. Exposed so cache layers can
    /// regenerate the inputs without rebuilding the tree (the pairs and the
    /// tree are cached separately).
    pub fn generate_inputs(params: &BtreeParams) -> (Vec<(u32, u64)>, Vec<u32>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(params.seed);
        let pairs: Vec<(u32, u64)> = (0..params.keys)
            .map(|i| (rng.gen_range(0..1 << 24), i as u64))
            .collect();
        let lookups: Vec<u32> = (0..params.queries)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    pairs[rng.gen_range(0..pairs.len())].0 // present key
                } else {
                    rng.gen_range(0..1 << 24) // probably absent
                }
            })
            .collect();
        (pairs, lookups)
    }

    /// Builds from explicit pairs and lookup keys.
    ///
    /// # Panics
    ///
    /// Panics if `branch < 3`.
    pub fn build_from_pairs(pairs: Vec<(u32, u64)>, lookups: &[u32], branch: usize) -> Self {
        let reference: std::collections::BTreeMap<u32, u64> = pairs.iter().copied().collect();
        let tree = BPlusTree::bulk_build(pairs, branch);
        Self::record_lookups(reference, lookups, tree)
    }

    /// Records the lookups over an already-built tree (the archive-cache
    /// restore path). `tree` must equal `BPlusTree::bulk_build(pairs,
    /// tree.branch())` — the caller's content key guarantees it; given
    /// that, the result is byte-identical to [`Self::build_from_pairs`].
    ///
    /// # Panics
    ///
    /// Panics if `tree` fails its own structural validation.
    pub fn build_with_tree(pairs: &[(u32, u64)], lookups: &[u32], tree: BPlusTree) -> Self {
        let reference: std::collections::BTreeMap<u32, u64> = pairs.iter().copied().collect();
        Self::record_lookups(reference, lookups, tree)
    }

    fn record_lookups(
        reference: std::collections::BTreeMap<u32, u64>,
        lookups: &[u32],
        tree: BPlusTree,
    ) -> Self {
        let branch = tree.branch();
        tree.validate()
            .expect("archived or bulk-built tree must be structurally valid");

        let mut events = Vec::with_capacity(lookups.len());
        let mut correct = 0usize;
        for &key in lookups {
            let (evs, value) = record_lookup(&tree, key);
            if value == reference.get(&key).copied() {
                correct += 1;
            }
            events.push(evs);
        }
        BtreeWorkload {
            events,
            branch,
            correctness: correct as f64 / lookups.len().max(1) as f64,
        }
    }

    /// Lowers the recorded lookups into a kernel trace.
    ///
    /// The two lowerings use the thread mappings the respective codes use:
    ///
    /// * **Baseline** — Rodinia's group-per-query kernel: a 32-lane warp
    ///   serves one query, scanning each node's separators in parallel
    ///   rounds with a ballot + prefix pick + sync per node.
    /// * **HSU** — thread-per-query: each lane issues its own `KEY_COMPARE`
    ///   chain per node (the point of the instruction is that one thread can
    ///   traverse alone), so a warp carries 32 queries.
    pub fn trace(&self, variant: Variant) -> KernelTrace {
        let mut kernel = KernelTrace::new(format!("btree-{variant:?}"));
        match variant {
            Variant::Hsu => {
                for chunk in self.events.chunks(32) {
                    for events in chunk {
                        let mut t = ThreadTrace::new();
                        t.push(ThreadOp::Alu { count: 2 });
                        for ev in events {
                            let (node, values) = match *ev {
                                Event::Internal { node, separators } => (node, separators),
                                Event::Leaf { node, keys } => (node, keys.max(1)),
                            };
                            let base = btree_node_addr(node as usize, self.branch);
                            emit_key_compare(&mut t, Variant::Hsu, base, values);
                            t.push(ThreadOp::Alu { count: 2 });
                            if matches!(*ev, Event::Leaf { .. }) {
                                t.push(ThreadOp::Load {
                                    addr: base + values as u64 * 4,
                                    bytes: 8,
                                });
                                t.push(ThreadOp::Alu { count: 2 });
                            }
                        }
                        t.push(ThreadOp::Store {
                            addr: crate::layout::RESULTS_BASE,
                            bytes: 8,
                        });
                        kernel.push_thread(t);
                    }
                }
            }
            Variant::Baseline | Variant::BaselineStripped => {
                // Rodinia's group-per-query scan, at warp granularity: per
                // level the group streams the node's KEYS array, picks the
                // child by parallel compare + ballot, then streams the
                // node's INDICES array to fetch the child pointer — two
                // dependent full-node fetches per level with syncs between
                // (the structure of Rodinia's findK kernel).
                for events in &self.events {
                    let mut lanes: Vec<ThreadTrace> = (0..32).map(|_| ThreadTrace::new()).collect();
                    for t in &mut lanes {
                        t.push(ThreadOp::Alu { count: 2 });
                    }
                    for ev in events {
                        let (node, values) = match *ev {
                            Event::Internal { node, separators } => (node, separators),
                            Event::Leaf { node, keys } => (node, keys.max(1)),
                        };
                        let base = btree_node_addr(node as usize, self.branch);
                        if variant == Variant::Baseline {
                            let lines = (values as u64 * 4).div_ceil(128).max(1);
                            for (lane, t) in lanes.iter_mut().enumerate() {
                                // Keys array: one parallel round, lanes
                                // fanned across the node's lines so the
                                // coalesced access covers the whole array.
                                t.push(ThreadOp::Load {
                                    addr: base + (lane as u64 % lines) * 128,
                                    bytes: 4,
                                });
                                t.push(ThreadOp::Alu { count: 6 });
                                t.push(ThreadOp::Shared { count: 2 }); // ballot + sync
                                                                       // Child-pointer fetch: the single matching
                                                                       // thread reads one indices element.
                                t.push(ThreadOp::Load {
                                    addr: base + lines * 128,
                                    bytes: 4,
                                });
                                t.push(ThreadOp::Shared { count: 2 }); // sync
                            }
                        }
                        if matches!(*ev, Event::Leaf { .. }) {
                            // Value fetch survives in every variant (lane 0).
                            lanes[0].push(ThreadOp::Load {
                                addr: base + values as u64 * 4,
                                bytes: 8,
                            });
                            lanes[0].push(ThreadOp::Alu { count: 2 });
                        }
                    }
                    lanes[0].push(ThreadOp::Store {
                        addr: crate::layout::RESULTS_BASE,
                        bytes: 8,
                    });
                    for t in lanes {
                        kernel.push_thread(t);
                    }
                }
            }
        }
        kernel
    }

    /// Number of lookup queries (one warp each).
    pub fn query_count(&self) -> usize {
        self.events.len()
    }
}

/// Descends the tree recording events; returns the lookup result.
fn record_lookup(tree: &BPlusTree, key: u32) -> (Vec<Event>, Option<u64>) {
    let mut events = Vec::new();
    let mut node = tree.root();
    loop {
        match &tree.nodes()[node as usize] {
            BtNode::Internal {
                separators,
                children,
            } => {
                events.push(Event::Internal {
                    node,
                    separators: separators.len() as u32,
                });
                let idx = separators.partition_point(|&s| s <= key);
                node = children[idx];
            }
            BtNode::Leaf { keys, values, .. } => {
                events.push(Event::Leaf {
                    node,
                    keys: keys.len() as u32,
                });
                return (events, keys.binary_search(&key).ok().map(|i| values[i]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_sim::config::GpuConfig;
    use hsu_sim::Gpu;

    #[test]
    fn lookups_are_correct() {
        let wl = BtreeWorkload::build(&BtreeParams::default());
        assert_eq!(wl.correctness, 1.0);
        assert_eq!(wl.query_count(), 512);
    }

    #[test]
    fn hsu_speedup_is_smallest_but_positive() {
        // Needs enough lookups for throughput (not latency) to dominate,
        // like the paper's batched-query setting.
        let wl = BtreeWorkload::build(&BtreeParams {
            keys: 50_000,
            queries: 8192,
            ..Default::default()
        });
        let gpu = Gpu::new(GpuConfig {
            num_sms: 2,
            ..GpuConfig::tiny()
        });
        let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
        let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        assert!(
            hsu.cycles < base.cycles,
            "HSU {} vs base {}",
            hsu.cycles,
            base.cycles
        );
        // Key-compare ops ran on the unit.
        let key_ops =
            hsu.rt.pipeline.completed[hsu_core::pipeline::OperatingMode::KeyCompare.index()];
        assert!(key_ops > 0);
    }

    #[test]
    fn offloadable_share_is_smallest_class() {
        // Fig. 7: B+-tree has the smallest HSU-able proportion.
        let wl = BtreeWorkload::build(&BtreeParams {
            keys: 20_000,
            queries: 512,
            ..Default::default()
        });
        let gpu = Gpu::new(GpuConfig::tiny());
        let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        let stripped = gpu.run(&wl.trace(Variant::BaselineStripped)).unwrap();
        let frac = crate::offloadable_fraction(&base, &stripped);
        assert!(frac > 0.05 && frac < 0.9, "fraction {frac}");
    }

    #[test]
    fn shallow_tree_few_events() {
        // 10k keys at branch 256 -> height 2: one internal + one leaf event.
        let wl = BtreeWorkload::build(&BtreeParams {
            keys: 10_000,
            queries: 4,
            ..Default::default()
        });
        for evs in &wl.events {
            assert!(evs.len() <= 3);
        }
    }
}
