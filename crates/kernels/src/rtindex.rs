//! RTIndeX re-implementation (paper §VI-G): GPU database indexing with ray
//! tracing, compared against the HSU's native point keys.
//!
//! RTIndeX encodes every integer key as a triangle (9 floats, 288 bits) so
//! the baseline RT unit can probe it with ray casts; the HSU stores the key
//! natively (32 bits) and probes with `KEY_COMPARE`. Both variants traverse
//! the same LBVH over the key space — the speedup comes from the 9:1 leaf
//! memory footprint. The paper measures +36.6 % for 163 840 lookups.

use hsu_bvh::{Bvh2, LbvhBuilder, NodeContent, PointPrimitive};
use hsu_geometry::Vec3;
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};

use crate::layout::{bvh2_node_addr, PRIM_INDEX_BASE};
use crate::lowering::{emit_bvh2_node_test, emit_key_compare, emit_triangle_test, Variant};

/// Byte size of one triangle-encoded key (9 × f32 = 288 bits, padded).
pub const TRIANGLE_KEY_BYTES: u64 = 48;
/// Byte size of one native key (32 bits).
pub const POINT_KEY_BYTES: u64 = 4;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct RtIndexParams {
    /// Number of keys in the index.
    pub keys: usize,
    /// Number of lookup queries (the paper uses 163 840).
    pub lookups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RtIndexParams {
    fn default() -> Self {
        RtIndexParams {
            keys: 4096,
            lookups: 2048,
            seed: 1,
        }
    }
}

/// Per-lookup traversal events (shared by both encodings; only the leaf
/// probe differs).
#[derive(Debug, Clone, Copy)]
enum Event {
    Pop,
    NodeTest { node: u32, pushes: u32 },
    LeafProbe { key_slot: u32 },
}

/// A prepared RTIndeX workload.
#[derive(Debug)]
pub struct RtIndexWorkload {
    /// Lookup traces over the native 1-D point-key index (HSU).
    point_events: Vec<Vec<Event>>,
    /// Lookup traces over the triangle-encoded index, whose 3-D key mapping
    /// "no longer aligns adjacent keys in a direct line in space" (§VI-G) —
    /// the bounding boxes overlap and traversal visits more nodes.
    triangle_events: Vec<Vec<Event>>,
    /// Fraction of lookups that found their key (1.0 for present keys).
    pub hit_rate: f64,
}

impl RtIndexWorkload {
    /// Builds the key index and records the lookups.
    pub fn build(params: &RtIndexParams) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(params.seed);
        let mut keys: Vec<u32> = Vec::with_capacity(params.keys);
        let mut seen = std::collections::HashSet::new();
        while keys.len() < params.keys {
            let k = rng.gen_range(0..1u32 << 24);
            if seen.insert(k) {
                keys.push(k);
            }
        }
        // Native HSU index: keys are 1-D positions on the x axis; the LBVH
        // degenerates to a balanced interval tree.
        let point_prims: Vec<PointPrimitive> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| PointPrimitive::new(i as u32, Vec3::new(k as f32, 0.0, 0.0), 0.5))
            .collect();
        let point_bvh = LbvhBuilder::default().build(&point_prims);

        // Triangle index: RTIndeX folds the 24-bit key into three float
        // coordinates; adjacent keys scatter through 3-D space, so leaf
        // boxes overlap and culling degrades (§VI-G's "messy" mapping).
        let tri_prims: Vec<PointPrimitive> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let pos = Vec3::new(
                    (k & 0xff) as f32,
                    ((k >> 8) & 0xff) as f32,
                    ((k >> 16) & 0xff) as f32,
                );
                // The triangle built around the key has finite extent in all
                // three dimensions.
                PointPrimitive::new(i as u32, pos, 0.5)
            })
            .collect();
        let tri_bvh = LbvhBuilder::default().build(&tri_prims);

        let mut point_events = Vec::with_capacity(params.lookups);
        let mut triangle_events = Vec::with_capacity(params.lookups);
        let mut hits = 0usize;
        for _ in 0..params.lookups {
            let probe = keys[rng.gen_range(0..keys.len())];
            let (evs, found) = record_lookup(
                &point_bvh,
                &point_prims,
                Vec3::new(probe as f32, 0.0, 0.0),
                probe,
            );
            if found {
                hits += 1;
            }
            point_events.push(evs);
            let probe_pos = Vec3::new(
                (probe & 0xff) as f32,
                ((probe >> 8) & 0xff) as f32,
                ((probe >> 16) & 0xff) as f32,
            );
            let (evs, found_tri) = record_lookup(&tri_bvh, &tri_prims, probe_pos, probe);
            debug_assert!(found_tri || !found, "triangle index must find present keys");
            triangle_events.push(evs);
        }
        RtIndexWorkload {
            point_events,
            triangle_events,
            hit_rate: hits as f64 / params.lookups.max(1) as f64,
        }
    }

    /// Lowers the lookups for the given key encoding:
    ///
    /// * [`Variant::Baseline`] — triangle-encoded keys on a plain RT unit
    ///   (leaf probes are ray-triangle tests over 48-byte primitives),
    /// * [`Variant::Hsu`] — native point keys (leaf probes are
    ///   `KEY_COMPARE` over 4-byte keys).
    ///
    /// Both traces use `RAY_INTERSECT` for the interior traversal, so the
    /// baseline here is a *baseline RT unit*, not a no-RT GPU.
    pub fn trace(&self, variant: Variant) -> KernelTrace {
        let name = match variant {
            Variant::Hsu => "rtindex-point-keys",
            Variant::Baseline => "rtindex-triangle-keys",
            Variant::BaselineStripped => "rtindex-stripped",
        };
        let mut kernel = KernelTrace::new(name);
        let events_for = match variant {
            Variant::Hsu => &self.point_events,
            Variant::Baseline | Variant::BaselineStripped => &self.triangle_events,
        };
        for events in events_for {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu { count: 4 });
            t.push(ThreadOp::Shared { count: 1 });
            for ev in events {
                match *ev {
                    Event::Pop => {
                        t.push(ThreadOp::Shared { count: 1 });
                        t.push(ThreadOp::Alu { count: 2 });
                    }
                    Event::NodeTest { node, pushes } => {
                        // Interior traversal is identical hardware for both
                        // encodings: a box-mode RAY_INTERSECT.
                        emit_bvh2_node_test(&mut t, Variant::Hsu, bvh2_node_addr(node as usize));
                        let _ = variant;
                        t.push(ThreadOp::Alu { count: 3 });
                        if pushes > 0 {
                            t.push(ThreadOp::Shared { count: pushes });
                        }
                    }
                    Event::LeafProbe { key_slot } => match variant {
                        Variant::Hsu => {
                            let addr = PRIM_INDEX_BASE + key_slot as u64 * POINT_KEY_BYTES;
                            emit_key_compare(&mut t, Variant::Hsu, addr, 1);
                            t.push(ThreadOp::Alu { count: 1 });
                        }
                        Variant::Baseline => {
                            let addr = PRIM_INDEX_BASE + key_slot as u64 * TRIANGLE_KEY_BYTES;
                            emit_triangle_test(&mut t, Variant::Hsu, addr);
                            t.push(ThreadOp::Alu { count: 1 });
                        }
                        Variant::BaselineStripped => {}
                    },
                }
            }
            t.push(ThreadOp::Store {
                addr: crate::layout::RESULTS_BASE,
                bytes: 8,
            });
            kernel.push_thread(t);
        }
        kernel
    }

    /// Memory footprint of the key store under each encoding, in bytes.
    pub fn key_store_bytes(&self, keys: usize, variant: Variant) -> u64 {
        match variant {
            Variant::Hsu => keys as u64 * POINT_KEY_BYTES,
            _ => keys as u64 * TRIANGLE_KEY_BYTES,
        }
    }
}

/// Traverses a key BVH toward `query`, recording events; `probe` is the key
/// being matched at leaves.
fn record_lookup(
    bvh: &Bvh2,
    prims: &[PointPrimitive],
    query: Vec3,
    probe: u32,
) -> (Vec<Event>, bool) {
    let mut events = Vec::new();
    let mut found = false;
    let mut stack = vec![0u32];
    while let Some(i) = stack.pop() {
        events.push(Event::Pop);
        let node = &bvh.nodes()[i as usize];
        match node.content {
            NodeContent::Internal { left, right } => {
                let mut pushes = 0;
                for child in [left, right] {
                    if bvh.nodes()[child as usize].aabb.distance_squared_to(query) <= 0.25 {
                        stack.push(child);
                        pushes += 1;
                    }
                }
                events.push(Event::NodeTest { node: i, pushes });
            }
            NodeContent::Leaf { start, count } => {
                for s in start..start + count {
                    events.push(Event::LeafProbe { key_slot: s });
                    let prim = &prims[bvh.prim_indices()[s as usize] as usize];
                    if (prim.position - query).length_squared() < 0.25 {
                        let _ = probe;
                        found = true;
                    }
                }
            }
        }
    }
    (events, found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_sim::config::GpuConfig;
    use hsu_sim::Gpu;

    #[test]
    fn lookups_find_present_keys() {
        let wl = RtIndexWorkload::build(&RtIndexParams {
            keys: 2048,
            lookups: 512,
            seed: 3,
        });
        assert!(wl.hit_rate > 0.99, "hit rate {}", wl.hit_rate);
    }

    #[test]
    fn point_keys_beat_triangle_keys() {
        let wl = RtIndexWorkload::build(&RtIndexParams {
            keys: 4096,
            lookups: 2048,
            seed: 1,
        });
        let gpu = Gpu::new(GpuConfig::tiny());
        let point = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
        let triangle = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        let speedup = triangle.cycles as f64 / point.cycles as f64;
        assert!(speedup > 1.0, "point keys not faster: {speedup}");
        // Triangle encoding moves more data.
        assert!(triangle.l1_accesses() >= point.l1_accesses());
    }

    #[test]
    fn nine_to_one_memory_advantage() {
        let wl = RtIndexWorkload::build(&RtIndexParams::default());
        let point = wl.key_store_bytes(100_000, Variant::Hsu);
        let triangle = wl.key_store_bytes(100_000, Variant::Baseline);
        assert_eq!(triangle / point, 12); // 48 B padded vs 4 B (9:1 unpadded)
        assert_eq!((TRIANGLE_KEY_BYTES - 12) / POINT_KEY_BYTES, 9);
    }
}
