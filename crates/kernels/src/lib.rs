//! The paper's evaluation workloads as trace-recording GPU kernels.
//!
//! Each workload is implemented twice over the same functional execution:
//!
//! * an **HSU lowering**, where node tests, distance computations and key
//!   comparisons become single CISC instructions on the RT/HSU unit, and
//! * a **baseline lowering**, the SIMT instruction sequences a V100 without
//!   ray-tracing hardware executes for the same work (the inverse of the
//!   paper's SASS-trace post-processor, §V-C).
//!
//! A third **stripped** lowering omits the offloadable operations entirely;
//! comparing its cycle count against the full baseline yields the
//! offloadable-cycle share of Fig. 7.
//!
//! The four workloads of §V-A ([`ggnn`], [`flann`], [`bvhnn`], [`btree`])
//! plus the RTIndeX case study of §VI-G ([`rtindex`]) all validate their
//! functional results (recall or exact lookups) before any timing is run.
//!
//! # Examples
//!
//! ```
//! use hsu_kernels::{bvhnn, Variant};
//! use hsu_sim::{config::GpuConfig, Gpu};
//!
//! let wl = bvhnn::BvhnnWorkload::build(&bvhnn::BvhnnParams {
//!     points: 400, queries: 64, seed: 7, ..Default::default()
//! });
//! let gpu = Gpu::new(GpuConfig::tiny());
//! let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
//! let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
//! assert!(hsu.cycles < base.cycles);
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod bvhnn;
pub mod flann;
pub mod ggnn;
pub mod layout;
pub mod lowering;
pub mod render;
pub mod rtindex;

pub use lowering::Variant;

use hsu_sim::config::GpuConfig;
use hsu_sim::{Gpu, SimReport};

/// Runs all three lowerings of a workload trace generator on one GPU
/// configuration, returning `(hsu, baseline, stripped)` reports.
///
/// # Panics
///
/// Panics if any of the three simulations fails (deadlock guard, invalid
/// config); test helpers want the loud failure. Use [`hsu_sim::Gpu::run`]
/// directly for a `Result`.
pub fn run_all_variants<F>(gpu: &Gpu, trace: F) -> (SimReport, SimReport, SimReport)
where
    F: Fn(Variant) -> hsu_sim::trace::KernelTrace,
{
    let run = |variant: Variant| match gpu.run(&trace(variant)) {
        Ok(report) => report,
        Err(e) => panic!("{variant:?} lowering failed to simulate: {e}"),
    };
    (
        run(Variant::Hsu),
        run(Variant::Baseline),
        run(Variant::BaselineStripped),
    )
}

/// The offloadable-cycle share of Fig. 7: the fraction of baseline cycles
/// attributable to operations the HSU could execute (arithmetic *and* their
/// operand loads), measured by removing them.
pub fn offloadable_fraction(baseline: &SimReport, stripped: &SimReport) -> f64 {
    if baseline.cycles == 0 {
        return 0.0;
    }
    1.0 - stripped.cycles as f64 / baseline.cycles as f64
}

/// Convenience: a baseline-RT-unit GPU config (HSU extensions off) used for
/// the RTIndeX comparison, where both sides use ray tracing hardware.
pub fn baseline_rt_gpu(mut cfg: GpuConfig) -> Gpu {
    cfg.hsu = hsu_core::HsuConfig::baseline_rt();
    Gpu::new(cfg)
}

// Workload builders run inside the parallel suite runner's worker threads;
// built workloads are then shared by reference across simulation jobs. This
// fails to compile if any workload grows non-`Send + Sync` interior state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ggnn::GgnnWorkload>();
    assert_send_sync::<flann::FlannWorkload>();
    assert_send_sync::<bvhnn::BvhnnWorkload>();
    assert_send_sync::<btree::BtreeWorkload>();
    assert_send_sync::<rtindex::RtIndexWorkload>();
};
