//! Instruction lowerings: how one logical operation becomes trace ops.
//!
//! The baseline sequences model what a V100 executes for the same work and
//! are the inverse of the paper's trace post-processor: where the HSU run
//! has one CISC instruction, the baseline run has the loads, FMAs and
//! reductions NVCC would have emitted.

use hsu_geometry::point::Metric;
use hsu_sim::trace::{ThreadOp, ThreadTrace};

/// Which lowering a trace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// HSU CISC instructions for node tests / distances / key compares.
    Hsu,
    /// SIMT expansion on a GPU without RT hardware (the Fig. 9 baseline).
    Baseline,
    /// Baseline with the offloadable operations removed (Fig. 7's probe).
    BaselineStripped,
}

impl Variant {
    /// All variants.
    pub const ALL: [Variant; 3] = [Variant::Hsu, Variant::Baseline, Variant::BaselineStripped];
}

/// Emits one full N-dimensional distance computation by a single thread.
///
/// * HSU: one multi-beat `POINT_EUCLID`/`POINT_ANGULAR` (fetches the vector).
/// * Baseline: the vector load plus `2 * dim` FMA-class instructions
///   (subtract+FMA per element, or mul+two FMAs for angular) and the final
///   scalar fold.
pub fn emit_distance(
    t: &mut ThreadTrace,
    variant: Variant,
    metric: Metric,
    dim: u32,
    candidate_addr: u64,
) {
    match variant {
        Variant::Hsu => {
            t.push(ThreadOp::HsuDistance {
                metric,
                dim,
                candidate_addr,
            });
        }
        Variant::Baseline => {
            // Vectorized loads, each a separate instruction and L1 access:
            // LDG.128 per four aligned elements; a trailing vec3/vec1 tail
            // (e.g. a 3-D point) splits into LDG.64 + LDG.32 as NVCC emits.
            let total = dim * 4;
            let mut off = 0;
            while off < total {
                let rem = total - off;
                let bytes = if rem >= 16 {
                    16
                } else if rem >= 8 {
                    8
                } else {
                    4
                };
                t.push(ThreadOp::Load {
                    addr: candidate_addr + off as u64,
                    bytes,
                });
                off += bytes;
            }
            let per_elem = match metric {
                Metric::Euclidean => 2, // sub + fma
                Metric::Angular => 3,   // dot fma + norm fma + mul
            };
            t.push(ThreadOp::Alu {
                count: dim * per_elem + 2,
            });
        }
        Variant::BaselineStripped => {}
    }
}

/// Emits a warp-cooperative distance (GGNN-style: 32 lanes partition the
/// dimensions, then tree-reduce with shuffles). Call for *each lane* of the
/// warp with the same arguments — the trace builder coalesces the loads.
///
/// `lane` selects the 4-byte-stride slice this lane loads.
pub fn emit_coop_distance(
    t: &mut ThreadTrace,
    variant: Variant,
    metric: Metric,
    dim: u32,
    candidate_addr: u64,
    lane: u32,
) {
    match variant {
        Variant::Hsu => {
            // With the HSU the whole warp's distance is one instruction from
            // one lane; callers route it to lane 0 only.
            if lane == 0 {
                t.push(ThreadOp::HsuDistance {
                    metric,
                    dim,
                    candidate_addr,
                });
            }
        }
        Variant::Baseline => {
            let elems_per_lane = dim.div_ceil(32).max(1);
            // The warp cooperatively streams the whole vector: lanes fan out
            // across its cache lines so one coalesced warp load covers every
            // line (`ceil(dim*4/128)` L1 accesses after coalescing).
            let lines = (dim as u64 * 4).div_ceil(128).max(1);
            let addr = candidate_addr + (lane as u64 % lines) * 128 + (lane as u64 / lines) * 4;
            t.push(ThreadOp::Load { addr, bytes: 4 });
            let per_elem = match metric {
                Metric::Euclidean => 2,
                Metric::Angular => 3,
            };
            // Per-lane FMA partials + 5-step shuffle reduction, plus the
            // extra load-issue slots of the unrolled streaming loop (the
            // compact single-Load above stands in for `lines` instructions).
            t.push(ThreadOp::Alu {
                count: elems_per_lane * per_elem + 5 + (lines as u32 - 1),
            });
        }
        Variant::BaselineStripped => {}
    }
}

/// Emits a BVH2 internal-node test (two child slab tests + closest-first
/// ordering of the hits).
///
/// * HSU: one box-mode `RAY_INTERSECT` fetching the 64-byte node.
/// * Baseline: the node load plus ~24 ALU ops (per box: 6 subtract, 6
///   multiply, 6 min/max, compare; ×2 boxes, plus the swap).
pub fn emit_bvh2_node_test(t: &mut ThreadTrace, variant: Variant, node_addr: u64) {
    match variant {
        Variant::Hsu => {
            t.push(ThreadOp::HsuRayIntersect {
                node_addr,
                bytes: crate::layout::BVH2_NODE_BYTES,
                triangle: false,
            });
        }
        Variant::Baseline => {
            // SASS fetches the node as four LDG.128s (separate instructions,
            // so separate L1 accesses) — the coalescing the HSU's CISC fetch
            // wins back (Fig. 12).
            for chunk in 0..4u64 {
                t.push(ThreadOp::Load {
                    addr: node_addr + chunk * 16,
                    bytes: 16,
                });
            }
            t.push(ThreadOp::Alu { count: 24 });
        }
        Variant::BaselineStripped => {}
    }
}

/// Emits a ray/triangle leaf test (RTIndeX's baseline key probe).
pub fn emit_triangle_test(t: &mut ThreadTrace, variant: Variant, node_addr: u64) {
    match variant {
        Variant::Hsu => {
            t.push(ThreadOp::HsuRayIntersect {
                node_addr,
                bytes: 48,
                triangle: true,
            });
        }
        Variant::Baseline => {
            // Three LDG.128s for the nine vertex floats + id.
            for chunk in 0..3u64 {
                t.push(ThreadOp::Load {
                    addr: node_addr + chunk * 16,
                    bytes: 16,
                });
            }
            // Woop test: translate (9), shear (12), edge functions (9),
            // determinant + distance (6).
            t.push(ThreadOp::Alu { count: 36 });
        }
        Variant::BaselineStripped => {}
    }
}

/// Emits a B-tree separator comparison over `separators` values.
///
/// * HSU: one `KEY_COMPARE` chain (fetches all separators once).
/// * Baseline: the separator load plus a compare+branch per separator
///   scanned (on average half the node before the scalar scan exits).
pub fn emit_key_compare(t: &mut ThreadTrace, variant: Variant, node_addr: u64, separators: u32) {
    match variant {
        Variant::Hsu => {
            t.push(ThreadOp::HsuKeyCompare {
                node_addr,
                separators,
            });
        }
        Variant::Baseline => {
            // Rodinia's kernel scans a node block-parallel: the lanes stream
            // every separator (one coalesced fetch of the whole node), then a
            // ballot/prefix pick of the child plus a block sync.
            t.push(ThreadOp::Load {
                addr: node_addr,
                bytes: separators * 4,
            });
            t.push(ThreadOp::Alu {
                count: (separators / 8).max(2) + 6,
            });
            // Ballot + prefix-scan of the compare results and the two block
            // syncs bracketing the level (Rodinia's findK structure).
            t.push(ThreadOp::Shared { count: 6 });
        }
        Variant::BaselineStripped => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_sim::trace::ThreadOp;

    #[test]
    fn hsu_distance_is_one_op() {
        let mut t = ThreadTrace::new();
        emit_distance(&mut t, Variant::Hsu, Metric::Euclidean, 96, 0x100);
        assert_eq!(t.ops().len(), 1);
        assert!(t.ops()[0].is_hsu());
    }

    #[test]
    fn baseline_distance_expands() {
        let mut t = ThreadTrace::new();
        emit_distance(&mut t, Variant::Baseline, Metric::Euclidean, 96, 0x100);
        // 96 dims = 24 LDG.128s plus the FMA chain.
        assert_eq!(t.ops().len(), 25);
        assert!(matches!(t.ops()[0], ThreadOp::Load { bytes: 16, .. }));
        assert!(matches!(t.ops()[24], ThreadOp::Alu { count: 194 }));
    }

    #[test]
    fn stripped_emits_nothing() {
        let mut t = ThreadTrace::new();
        emit_distance(&mut t, Variant::BaselineStripped, Metric::Angular, 64, 0);
        emit_bvh2_node_test(&mut t, Variant::BaselineStripped, 0);
        emit_key_compare(&mut t, Variant::BaselineStripped, 0, 255);
        emit_triangle_test(&mut t, Variant::BaselineStripped, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn coop_distance_hsu_only_lane_zero() {
        for lane in 0..32 {
            let mut t = ThreadTrace::new();
            emit_coop_distance(&mut t, Variant::Hsu, Metric::Angular, 200, 0x80, lane);
            assert_eq!(t.ops().len(), usize::from(lane == 0));
        }
    }

    #[test]
    fn coop_distance_baseline_covers_every_line() {
        // dim 96 = 384 B = 3 lines; the 32 lanes must fan out over all three
        // so the coalesced warp access touches the whole vector.
        let base = 0x1000u64;
        let mut lines = std::collections::HashSet::new();
        for lane in 0..32 {
            let mut t = ThreadTrace::new();
            emit_coop_distance(&mut t, Variant::Baseline, Metric::Euclidean, 96, base, lane);
            let ThreadOp::Load { addr, .. } = t.ops()[0] else {
                panic!()
            };
            assert!(
                addr >= base && addr < base + 384,
                "lane {lane} out of vector"
            );
            lines.insert((addr - base) / 128);
        }
        assert_eq!(lines.len(), 3, "all three lines covered");
    }

    #[test]
    fn angular_costs_more_alu_than_euclid() {
        let mut e = ThreadTrace::new();
        let mut a = ThreadTrace::new();
        emit_distance(&mut e, Variant::Baseline, Metric::Euclidean, 64, 0);
        emit_distance(&mut a, Variant::Baseline, Metric::Angular, 64, 0);
        let count = |t: &ThreadTrace| {
            t.ops()
                .iter()
                .find_map(|op| match op {
                    ThreadOp::Alu { count } => Some(*count),
                    _ => None,
                })
                .expect("baseline emits an ALU chain")
        };
        assert!(count(&a) > count(&e));
    }
}
