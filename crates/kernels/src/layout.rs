//! The virtual address map shared by all workload traces.
//!
//! The simulator only sees addresses; these bases keep the different data
//! structures in disjoint regions so cache behaviour is realistic (vectors
//! stream, nodes are hot, adjacency lists are mid-sized).

/// Base of the dataset's flat vector buffer.
pub const VECTORS_BASE: u64 = 0x1000_0000;
/// Base of graph adjacency storage.
pub const ADJACENCY_BASE: u64 = 0x2000_0000;
/// Base of BVH node storage.
pub const BVH_NODES_BASE: u64 = 0x3000_0000;
/// Base of k-d tree node storage.
pub const KD_NODES_BASE: u64 = 0x4000_0000;
/// Base of B+-tree node storage.
pub const BTREE_NODES_BASE: u64 = 0x5000_0000;
/// Base of leaf primitive-index storage.
pub const PRIM_INDEX_BASE: u64 = 0x6000_0000;
/// Base of per-query result storage.
pub const RESULTS_BASE: u64 = 0x7000_0000;

/// Address of vector `i` in a `dim`-dimensional set.
#[inline]
pub fn vector_addr(i: usize, dim: usize) -> u64 {
    VECTORS_BASE + (i * dim * 4) as u64
}

/// Address of a BVH2 node (64 B each: two child AABBs + pointers).
#[inline]
pub fn bvh2_node_addr(i: usize) -> u64 {
    BVH_NODES_BASE + (i * 64) as u64
}

/// Bytes fetched per BVH2 internal-node test (both children).
pub const BVH2_NODE_BYTES: u32 = 64;

/// Address of a k-d tree node (16 B: axis, split, children).
#[inline]
pub fn kd_node_addr(i: usize) -> u64 {
    KD_NODES_BASE + (i * 16) as u64
}

/// Address of a B+-tree node; nodes are padded to `branch * 8` bytes.
#[inline]
pub fn btree_node_addr(i: usize, branch: usize) -> u64 {
    BTREE_NODES_BASE + (i * branch * 8) as u64
}

/// Address of an adjacency list (graph `layer`, node `i`, degree `m`);
/// layers are spaced far apart.
#[inline]
pub fn adjacency_addr(layer: usize, i: usize, m: usize) -> u64 {
    ADJACENCY_BASE + ((layer as u64) << 24) + (i * m * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let bases = [
            VECTORS_BASE,
            ADJACENCY_BASE,
            BVH_NODES_BASE,
            KD_NODES_BASE,
            BTREE_NODES_BASE,
            PRIM_INDEX_BASE,
            RESULTS_BASE,
        ];
        for w in bases.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[1] - w[0] >= 0x1000_0000);
        }
    }

    #[test]
    fn vector_addresses_stride_by_row() {
        assert_eq!(vector_addr(0, 96), VECTORS_BASE);
        assert_eq!(vector_addr(1, 96) - vector_addr(0, 96), 384);
    }

    #[test]
    fn adjacency_layers_do_not_collide() {
        let a = adjacency_addr(0, 1000, 16);
        let b = adjacency_addr(1, 0, 16);
        assert!(b > a);
    }
}
