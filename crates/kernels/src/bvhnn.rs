//! BVH-NN: thread-per-query radius search over an LBVH (paper §V-A, §VI-E).
//!
//! The RTNN-style formulation: leaf boxes of side `2r` centred on each data
//! point, a Morton-ordered LBVH, and a per-thread traversal stack kept in
//! shared memory. The HSU accelerates the ray-box node tests; stack
//! maintenance and hit processing stay on the SIMT core (§VI-C).

use hsu_bvh::{
    Bvh2, Bvh4, Bvh4Child, Bvh4Packed, LbvhBuilder, NodeContent, PackedChild, PointPrimitive,
    SahBuilder, TreeletPacked,
};
use hsu_datasets::query_set;
use hsu_geometry::batch;
use hsu_geometry::point::{Metric, PointSet};
use hsu_geometry::Vec3;
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};

use crate::layout::{bvh2_node_addr, vector_addr};
use crate::lowering::{emit_bvh2_node_test, emit_distance, Variant};

/// Which hierarchy BVH-NN traverses — the §VI-E ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BvhFlavor {
    /// Binary LBVH, the paper's evaluated configuration.
    #[default]
    Lbvh2,
    /// The LBVH collapsed to 4-wide nodes ("a BVH4 tree would likely have
    /// better performance in our unit", §VI-E).
    Lbvh4,
    /// A binary SAH tree (the "more optimized BVH" quality upgrade, §VI-E).
    Sah2,
    /// The LBVH4 in the packed fixed-slot 128-byte layout
    /// ([`Bvh4Packed`]) — node addresses follow the packed stride, which
    /// is exactly the 128-byte fetch the 4-wide `RAY_INTERSECT` charges.
    Packed4,
    /// The binary LBVH re-permuted into cache-line-grouped treelets
    /// ([`TreeletPacked`], [`TREELET_NODES`] nodes per treelet) — same
    /// tree, same results, but node addresses cluster so the treelet RT
    /// core's staging buffers turn parent→child hops into hits.
    Treelet,
}

/// Nodes per treelet for [`BvhFlavor::Treelet`]: the simulator's default
/// staging pool (4 lines × 128 B) holds 512 B, i.e. eight 64-byte binary
/// nodes — one treelet fits the pool exactly.
pub const TREELET_NODES: usize = 8;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct BvhnnParams {
    /// Dataset size (generated uniform cube when no set is supplied).
    pub points: usize,
    /// Number of queries.
    pub queries: usize,
    /// Search radius as a multiple of the median nearest-neighbour distance
    /// (the paper fixes the leaf half-side to the search radius).
    pub radius_scale: f32,
    /// Hierarchy variant.
    pub flavor: BvhFlavor,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BvhnnParams {
    fn default() -> Self {
        BvhnnParams {
            points: 2000,
            queries: 128,
            radius_scale: 1.5,
            flavor: BvhFlavor::Lbvh2,
            seed: 1,
        }
    }
}

/// Per-thread traversal events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Pop + loop control.
    Pop,
    /// Binary-node box test; `pushes` children were pushed.
    NodeTest { node: u32, pushes: u32 },
    /// 4-wide node test (one RAY_INTERSECT covering up to four boxes).
    NodeTest4 { node: u32, pushes: u32 },
    /// Leaf distance test against one point.
    LeafDistance { point: u32 },
}

/// A prepared BVH-NN workload.
#[derive(Debug)]
pub struct BvhnnWorkload {
    events: Vec<Vec<Event>>,
    /// Mean neighbours found per query (functional sanity signal).
    pub mean_neighbors: f64,
    /// Mean distance (leaf) tests per query — the paper reports < 200 for
    /// the 3-D datasets (§VI-C).
    pub mean_distance_tests: f64,
    /// The radius used.
    pub radius: f32,
}

impl BvhnnWorkload {
    /// Builds over a generated uniform cube.
    pub fn build(params: &BvhnnParams) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(params.seed);
        let data: Vec<f32> = (0..params.points * 3)
            .map(|_| rng.gen_range(0.0f32..1.0))
            .collect();
        Self::build_from_points(params, &PointSet::from_rows(3, data))
    }

    /// Builds over a caller-supplied 3-D point set.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not 3-dimensional or empty.
    pub fn build_from_points(params: &BvhnnParams, data: &PointSet) -> Self {
        let (bvh2, radius) = Self::plan(params, data);
        Self::build_with_bvh(params, data, &bvh2, radius)
    }

    /// The expensive pre-search state: the query radius (median-NN heuristic
    /// × `radius_scale`) and the binary BVH over `data`'s points at that
    /// radius. This pair is what the archive cache stores; everything else
    /// (primitives, the wide BVH) is a cheap deterministic function of it.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not 3-dimensional or empty.
    pub fn plan(params: &BvhnnParams, data: &PointSet) -> (Bvh2, f32) {
        assert_eq!(data.dim(), 3, "BVH-NN is a 3-D workload");
        assert!(!data.is_empty(), "empty dataset");
        let radius = median_nn_distance(data, params.seed) * params.radius_scale;
        let prims = Self::primitives(data, radius);
        let bvh2 = match params.flavor {
            BvhFlavor::Sah2 => SahBuilder::default().max_leaf_size(1).build(&prims),
            _ => LbvhBuilder::default().build(&prims),
        };
        (bvh2, radius)
    }

    fn primitives(data: &PointSet, radius: f32) -> Vec<PointPrimitive> {
        data.iter()
            .enumerate()
            .map(|(i, p)| PointPrimitive::new(i as u32, Vec3::new(p[0], p[1], p[2]), radius))
            .collect()
    }

    /// Records the searches over an already-built BVH (the archive-cache
    /// restore path). `(bvh2, radius)` must equal [`Self::plan`]`(params,
    /// data)` — the caller's content key guarantees it; given that, the
    /// result is byte-identical to [`Self::build_from_points`].
    pub fn build_with_bvh(params: &BvhnnParams, data: &PointSet, bvh2: &Bvh2, radius: f32) -> Self {
        assert_eq!(data.dim(), 3, "BVH-NN is a 3-D workload");
        let prims = Self::primitives(data, radius);
        let queries = query_set(data, params.queries, params.seed ^ 0xbeef);
        let bvh4 = (params.flavor == BvhFlavor::Lbvh4).then(|| Bvh4::from_bvh2(bvh2));
        let packed4 = (params.flavor == BvhFlavor::Packed4).then(|| Bvh4Packed::from_bvh2(bvh2));
        let treelet =
            (params.flavor == BvhFlavor::Treelet).then(|| TreeletPacked::pack(bvh2, TREELET_NODES));

        let mut events = Vec::with_capacity(queries.len());
        let mut total_neighbors = 0u64;
        let mut total_tests = 0u64;
        for q in queries.iter() {
            let query = Vec3::new(q[0], q[1], q[2]);
            let (evs, found, tests) = if let Some(bvh4) = &bvh4 {
                record_radius_search4(bvh4, &prims, query, radius)
            } else if let Some(packed4) = &packed4 {
                record_radius_search_packed4(packed4, &prims, query, radius)
            } else if let Some(treelet) = &treelet {
                // The packed tree is a Bvh2 permutation: the recorder walks
                // it directly, so NodeTest events carry the *packed* node
                // indices and the lowered addresses inherit the treelet
                // grouping.
                record_radius_search(treelet.as_bvh2(), &prims, query, radius)
            } else {
                record_radius_search(bvh2, &prims, query, radius)
            };
            total_neighbors += found;
            total_tests += tests;
            events.push(evs);
        }
        let nq = queries.len() as f64;
        BvhnnWorkload {
            events,
            mean_neighbors: total_neighbors as f64 / nq,
            mean_distance_tests: total_tests as f64 / nq,
            radius,
        }
    }

    /// Lowers the recorded traversals into a kernel trace.
    pub fn trace(&self, variant: Variant) -> KernelTrace {
        let mut kernel = KernelTrace::new(format!("bvhnn-{variant:?}"));
        for events in &self.events {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu { count: 6 }); // ray/query setup
            t.push(ThreadOp::Shared { count: 1 }); // stack init
            for ev in events {
                match *ev {
                    Event::Pop => {
                        t.push(ThreadOp::Shared { count: 1 });
                        t.push(ThreadOp::Alu { count: 2 });
                    }
                    Event::NodeTest { node, pushes } => {
                        emit_bvh2_node_test(&mut t, variant, bvh2_node_addr(node as usize));
                        // Result processing + child pushes stay on the SM.
                        t.push(ThreadOp::Alu { count: 3 });
                        if pushes > 0 {
                            t.push(ThreadOp::Shared { count: pushes });
                        }
                    }
                    Event::NodeTest4 { node, pushes } => {
                        // A 4-wide node: one 128-byte RAY_INTERSECT on the
                        // HSU; eight LDG.128s plus four slab tests on the SM.
                        let addr = crate::layout::BVH_NODES_BASE + node as u64 * 128;
                        match variant {
                            Variant::Hsu => {
                                t.push(ThreadOp::HsuRayIntersect {
                                    node_addr: addr,
                                    bytes: 128,
                                    triangle: false,
                                });
                            }
                            Variant::Baseline => {
                                for chunk in 0..8u64 {
                                    t.push(ThreadOp::Load {
                                        addr: addr + chunk * 16,
                                        bytes: 16,
                                    });
                                }
                                t.push(ThreadOp::Alu { count: 48 });
                            }
                            Variant::BaselineStripped => {}
                        }
                        t.push(ThreadOp::Alu { count: 3 });
                        if pushes > 0 {
                            t.push(ThreadOp::Shared { count: pushes });
                        }
                    }
                    Event::LeafDistance { point } => {
                        emit_distance(
                            &mut t,
                            variant,
                            Metric::Euclidean,
                            3,
                            vector_addr(point as usize, 3),
                        );
                        t.push(ThreadOp::Alu { count: 2 }); // compare + collect
                    }
                }
            }
            t.push(ThreadOp::Store {
                addr: crate::layout::RESULTS_BASE,
                bytes: 8,
            });
            kernel.push_thread(t);
        }
        kernel
    }

    /// Number of query threads.
    pub fn query_count(&self) -> usize {
        self.events.len()
    }
}

/// Median nearest-neighbour distance over a sample (the radius heuristic).
fn median_nn_distance(data: &PointSet, _seed: u64) -> f32 {
    let sample = data.len().min(128);
    let mut ds: Vec<f32> = (0..sample)
        .map(|i| {
            data.nearest_brute_force_excluding(data.point(i), i, Metric::Euclidean)
                .1
        })
        .collect();
    ds.sort_by(f32::total_cmp);
    ds[sample / 2].sqrt().max(1e-6)
}

/// Stack traversal that records events and returns (events, neighbours
/// found, leaf tests).
fn record_radius_search(
    bvh: &Bvh2,
    prims: &[PointPrimitive],
    query: Vec3,
    radius: f32,
) -> (Vec<Event>, u64, u64) {
    let mut events = Vec::new();
    let mut found = 0u64;
    let mut tests = 0u64;
    if bvh.nodes().is_empty() {
        return (events, found, tests);
    }
    let r2 = radius * radius;
    let mut stack = vec![0u32];
    // Leaf-refine scratch, reused across pops so the batched distance pass
    // allocates nothing in steady state.
    let mut leaf_ids: Vec<u32> = Vec::new();
    let mut leaf_pos: Vec<Vec3> = Vec::new();
    let mut dists: Vec<f32> = Vec::new();
    while let Some(i) = stack.pop() {
        events.push(Event::Pop);
        let node = &bvh.nodes()[i as usize];
        match node.content {
            NodeContent::Internal { left, right } => {
                let mut pushes = 0;
                for child in [left, right] {
                    if bvh.nodes()[child as usize].aabb.distance_squared_to(query) <= r2 {
                        stack.push(child);
                        pushes += 1;
                    }
                }
                events.push(Event::NodeTest { node: i, pushes });
            }
            NodeContent::Leaf { start, count } => {
                leaf_ids.clear();
                leaf_pos.clear();
                for s in start..start + count {
                    let p = &prims[bvh.prim_indices()[s as usize] as usize];
                    leaf_ids.push(p.id);
                    leaf_pos.push(p.position);
                }
                dists.clear();
                batch::vec3_distance_squared(query, &leaf_pos, &mut dists);
                for (&id, &d2) in leaf_ids.iter().zip(&dists) {
                    events.push(Event::LeafDistance { point: id });
                    tests += 1;
                    if d2 <= r2 {
                        found += 1;
                    }
                }
            }
        }
    }
    (events, found, tests)
}

/// 4-wide stack traversal that records events.
fn record_radius_search4(
    bvh: &Bvh4,
    prims: &[PointPrimitive],
    query: Vec3,
    radius: f32,
) -> (Vec<Event>, u64, u64) {
    let mut events = Vec::new();
    let mut found = 0u64;
    let mut tests = 0u64;
    if bvh.nodes().is_empty() {
        return (events, found, tests);
    }
    let r2 = radius * radius;
    let mut stack = vec![0u32];
    // Scratch reused across pops: a 4-wide node can surface several leaves'
    // worth of points, which the batched distance pass refines in one go.
    let mut leaf_points: Vec<u32> = Vec::new();
    let mut leaf_pos: Vec<Vec3> = Vec::new();
    let mut dists: Vec<f32> = Vec::new();
    while let Some(i) = stack.pop() {
        events.push(Event::Pop);
        let mut pushes = 0;
        leaf_points.clear();
        for child in &bvh.nodes()[i as usize].children {
            if child.aabb().distance_squared_to(query) > r2 {
                continue;
            }
            match *child {
                Bvh4Child::Node { index, .. } => {
                    stack.push(index);
                    pushes += 1;
                }
                Bvh4Child::Leaf { start, count, .. } => {
                    for s in start..start + count {
                        leaf_points.push(bvh.prim_indices()[s as usize]);
                    }
                }
            }
        }
        events.push(Event::NodeTest4 { node: i, pushes });
        leaf_pos.clear();
        leaf_pos.extend(leaf_points.iter().map(|&p| prims[p as usize].position));
        dists.clear();
        batch::vec3_distance_squared(query, &leaf_pos, &mut dists);
        for (&p, &d2) in leaf_points.iter().zip(&dists) {
            events.push(Event::LeafDistance {
                point: prims[p as usize].id,
            });
            tests += 1;
            if d2 <= r2 {
                found += 1;
            }
        }
    }
    (events, found, tests)
}

/// 4-wide traversal of the packed fixed-slot layout. Event-identical to
/// [`record_radius_search4`] on the same tree — the packed layout mirrors
/// [`Bvh4`] slot for slot and empty slots fail every box test — but the
/// walk reads the memory arrangement the trace actually charges.
fn record_radius_search_packed4(
    bvh: &Bvh4Packed,
    prims: &[PointPrimitive],
    query: Vec3,
    radius: f32,
) -> (Vec<Event>, u64, u64) {
    let mut events = Vec::new();
    let mut found = 0u64;
    let mut tests = 0u64;
    if bvh.nodes().is_empty() {
        return (events, found, tests);
    }
    let r2 = radius * radius;
    let mut stack = vec![0u32];
    let mut leaf_points: Vec<u32> = Vec::new();
    let mut leaf_pos: Vec<Vec3> = Vec::new();
    let mut dists: Vec<f32> = Vec::new();
    while let Some(i) = stack.pop() {
        events.push(Event::Pop);
        let mut pushes = 0;
        leaf_points.clear();
        let node = &bvh.nodes()[i as usize];
        for slot in 0..4 {
            if node.aabbs[slot].distance_squared_to(query) > r2 {
                continue;
            }
            match node.children[slot] {
                PackedChild::Empty => {}
                PackedChild::Node(index) => {
                    stack.push(index);
                    pushes += 1;
                }
                PackedChild::Leaf { start, count } => {
                    for s in start..start + count {
                        leaf_points.push(bvh.prim_indices()[s as usize]);
                    }
                }
            }
        }
        events.push(Event::NodeTest4 { node: i, pushes });
        leaf_pos.clear();
        leaf_pos.extend(leaf_points.iter().map(|&p| prims[p as usize].position));
        dists.clear();
        batch::vec3_distance_squared(query, &leaf_pos, &mut dists);
        for (&p, &d2) in leaf_points.iter().zip(&dists) {
            events.push(Event::LeafDistance {
                point: prims[p as usize].id,
            });
            tests += 1;
            if d2 <= r2 {
                found += 1;
            }
        }
    }
    (events, found, tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_sim::config::GpuConfig;
    use hsu_sim::Gpu;

    #[test]
    fn finds_neighbors_and_culls() {
        let wl = BvhnnWorkload::build(&BvhnnParams {
            points: 1500,
            queries: 64,
            ..Default::default()
        });
        assert!(
            wl.mean_neighbors >= 1.0,
            "radius too small: {}",
            wl.mean_neighbors
        );
        assert!(
            wl.mean_distance_tests < 200.0,
            "culling too weak: {} tests/query (paper reports < 200)",
            wl.mean_distance_tests
        );
    }

    #[test]
    fn hsu_beats_baseline() {
        let wl = BvhnnWorkload::build(&BvhnnParams {
            points: 1500,
            queries: 128,
            ..Default::default()
        });
        let gpu = Gpu::new(GpuConfig::tiny());
        let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
        let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        assert!(
            hsu.cycles < base.cycles,
            "HSU {} vs base {}",
            hsu.cycles,
            base.cycles
        );
        // Box tests dominate: ray-box ops far outnumber distance beats.
        let box_ops = hsu.rt.pipeline.completed[hsu_core::pipeline::OperatingMode::RayBox.index()];
        let dist_ops = hsu.rt.pipeline.completed[hsu_core::pipeline::OperatingMode::Euclid.index()];
        assert!(box_ops > dist_ops, "box {box_ops} vs dist {dist_ops}");
    }

    #[test]
    fn stripped_trace_is_cheaper() {
        let wl = BvhnnWorkload::build(&BvhnnParams {
            points: 800,
            queries: 32,
            ..Default::default()
        });
        let gpu = Gpu::new(GpuConfig::tiny());
        let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        let stripped = gpu.run(&wl.trace(Variant::BaselineStripped)).unwrap();
        let frac = crate::offloadable_fraction(&base, &stripped);
        // Box tests are the bulk of BVH-NN (Fig. 7 shows it near the top).
        assert!(frac > 0.3, "offloadable fraction {frac}");
    }

    /// Per-thread RAY_INTERSECT count in a trace (independent of warp
    /// grouping).
    fn ray_ops(trace: &KernelTrace) -> u64 {
        trace
            .warps()
            .iter()
            .flat_map(|w| &w.instructions)
            .flat_map(|i| i.lanes.iter().flatten())
            .filter(|op| matches!(op, ThreadOp::HsuRayIntersect { .. }))
            .count() as u64
    }

    #[test]
    fn bvh4_flavor_reduces_node_tests() {
        let base = BvhnnParams {
            points: 1200,
            queries: 64,
            ..Default::default()
        };
        let wl2 = BvhnnWorkload::build(&base);
        let wl4 = BvhnnWorkload::build(&BvhnnParams {
            flavor: BvhFlavor::Lbvh4,
            ..base.clone()
        });
        // Same answers...
        assert!((wl2.mean_neighbors - wl4.mean_neighbors).abs() < 1e-9);
        // ...with fewer RAY_INTERSECTs per thread (4-wide nodes).
        let ray2 = ray_ops(&wl2.trace(Variant::Hsu));
        let ray4 = ray_ops(&wl4.trace(Variant::Hsu));
        assert!(ray4 < ray2, "BVH4 {ray4} vs BVH2 {ray2} node tests");
    }

    #[test]
    fn sah_flavor_matches_answers_with_quality_tree() {
        let base = BvhnnParams {
            points: 1500,
            queries: 64,
            ..Default::default()
        };
        let lbvh = BvhnnWorkload::build(&base);
        let sah = BvhnnWorkload::build(&BvhnnParams {
            flavor: BvhFlavor::Sah2,
            ..base.clone()
        });
        assert!(
            (lbvh.mean_neighbors - sah.mean_neighbors).abs() < 1e-9,
            "answers must match"
        );
        // On clustered real data SAH usually wins; on a uniform cube the
        // trees are comparable — only require the same order of magnitude.
        let nl = ray_ops(&lbvh.trace(Variant::Hsu));
        let ns = ray_ops(&sah.trace(Variant::Hsu));
        assert!(ns <= nl * 2, "SAH {ns} vs LBVH {nl} node tests");
    }

    #[test]
    fn packed4_flavor_matches_the_logical_bvh4_events() {
        let base = BvhnnParams {
            points: 1000,
            queries: 48,
            ..Default::default()
        };
        let wl4 = BvhnnWorkload::build(&BvhnnParams {
            flavor: BvhFlavor::Lbvh4,
            ..base.clone()
        });
        let wlp = BvhnnWorkload::build(&BvhnnParams {
            flavor: BvhFlavor::Packed4,
            ..base.clone()
        });
        // The packed layout mirrors the logical BVH4 slot for slot, so the
        // lowered traces are identical, not merely equivalent.
        assert!((wl4.mean_neighbors - wlp.mean_neighbors).abs() < 1e-9);
        assert_eq!(wl4.trace(Variant::Hsu), wlp.trace(Variant::Hsu));
    }

    #[test]
    fn treelet_flavor_matches_answers_with_reordered_addresses() {
        let base = BvhnnParams {
            points: 1200,
            queries: 64,
            ..Default::default()
        };
        let wl2 = BvhnnWorkload::build(&base);
        let wlt = BvhnnWorkload::build(&BvhnnParams {
            flavor: BvhFlavor::Treelet,
            ..base.clone()
        });
        // Same answers, same per-thread work (a permutation cannot change
        // which boxes pass), different node addresses.
        assert!((wl2.mean_neighbors - wlt.mean_neighbors).abs() < 1e-9);
        assert!((wl2.mean_distance_tests - wlt.mean_distance_tests).abs() < 1e-9);
        assert_eq!(
            ray_ops(&wl2.trace(Variant::Hsu)),
            ray_ops(&wlt.trace(Variant::Hsu))
        );
        assert_ne!(wl2.trace(Variant::Hsu), wlt.trace(Variant::Hsu));
    }

    #[test]
    fn treelet_layout_feeds_the_staging_pool() {
        use hsu_sim::config::RtCoreKind;
        // The layout × organization payoff: on the treelet core, the
        // treelet-packed node arrangement must produce more staging-buffer
        // hits than the builder's native DFS order.
        let base = BvhnnParams {
            points: 1200,
            queries: 64,
            ..Default::default()
        };
        let native = BvhnnWorkload::build(&base);
        let packed = BvhnnWorkload::build(&BvhnnParams {
            flavor: BvhFlavor::Treelet,
            ..base.clone()
        });
        let gpu = Gpu::new(GpuConfig::tiny().with_rt_core(RtCoreKind::Treelet));
        let native_run = gpu.run(&native.trace(Variant::Hsu)).unwrap();
        let packed_run = gpu.run(&packed.trace(Variant::Hsu)).unwrap();
        assert!(
            packed_run.rt.staging_hits > native_run.rt.staging_hits,
            "treelet packing must raise staging hits: {} vs {}",
            packed_run.rt.staging_hits,
            native_run.rt.staging_hits
        );
        // The per-warp transition counter keys on the *lead lane's* walk
        // only, and the 32 lanes of a warp chase different queries — so the
        // packing shows up as staging hits (above), while transitions only
        // need to stay in the same band, not strictly improve.
        assert!(
            packed_run.rt.treelet_transitions <= native_run.rt.treelet_transitions * 11 / 10,
            "treelet packing blew up treelet switches: {} vs {}",
            packed_run.rt.treelet_transitions,
            native_run.rt.treelet_transitions
        );
    }

    #[test]
    fn thread_per_query() {
        let wl = BvhnnWorkload::build(&BvhnnParams {
            points: 300,
            queries: 40,
            ..Default::default()
        });
        assert_eq!(wl.query_count(), 40);
        assert_eq!(wl.trace(Variant::Hsu).thread_count(), 40);
    }
}
