//! Classic ray tracing as a timing workload: the RT unit's native job.
//!
//! Not one of the paper's four evaluation workloads, but the baseline the
//! HSU must remain compatible with (§III-B: "fully compatible with existing
//! graphics ray tracing interfaces"). One thread per ray performs a stack
//! traversal with box-mode `RAY_INTERSECT`s on internal nodes and
//! triangle-mode tests at leaves; the baseline lowering expands both into
//! SIMT loads + slab/Woop arithmetic.

use hsu_bvh::{Bvh2, LbvhBuilder, NodeContent, TrianglePrimitive};
use hsu_geometry::{Ray, Triangle, Vec3};
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};

use crate::layout::{bvh2_node_addr, PRIM_INDEX_BASE};
use crate::lowering::{emit_bvh2_node_test, emit_triangle_test, Variant};

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct RenderParams {
    /// Frame width in pixels (one primary ray per pixel).
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Terrain tessellation (triangles = 2 * grid^2 + 4).
    pub grid: usize,
    /// RNG seed (jitters the camera).
    pub seed: u64,
}

impl Default for RenderParams {
    fn default() -> Self {
        RenderParams {
            width: 64,
            height: 32,
            grid: 20,
            seed: 1,
        }
    }
}

/// Per-ray traversal events.
#[derive(Debug, Clone, Copy)]
enum Event {
    Pop,
    NodeTest { node: u32, pushes: u32 },
    TriangleTest { slot: u32 },
}

/// A prepared render workload.
#[derive(Debug)]
pub struct RenderWorkload {
    events: Vec<Vec<Event>>,
    /// Fraction of primary rays that hit geometry.
    pub hit_rate: f64,
    /// Mean triangle tests per ray.
    pub mean_triangle_tests: f64,
}

impl RenderWorkload {
    /// Builds the procedural scene and records every primary ray.
    pub fn build(params: &RenderParams) -> Self {
        let scene = procedural_scene(params.grid);
        let bvh = LbvhBuilder::default().max_leaf_size(2).build(&scene);

        let eye = Vec3::new(0.0, 2.2 + (params.seed % 7) as f32 * 0.05, -6.0);
        let mut events = Vec::with_capacity(params.width * params.height);
        let mut hits = 0usize;
        let mut tri_tests = 0u64;
        for py in 0..params.height {
            for px in 0..params.width {
                let u = px as f32 / params.width as f32 * 2.0 - 1.0;
                let v = 1.0 - py as f32 / params.height as f32 * 2.0;
                // Tilt the camera down toward the terrain.
                let ray = Ray::new(eye, Vec3::new(u * 1.2, v * 0.4 - 0.4, 1.0));
                let (evs, hit, tests) = record_trace(&bvh, &scene, &ray);
                if hit {
                    hits += 1;
                }
                tri_tests += tests;
                events.push(evs);
            }
        }
        let rays = (params.width * params.height) as f64;
        RenderWorkload {
            events,
            hit_rate: hits as f64 / rays,
            mean_triangle_tests: tri_tests as f64 / rays,
        }
    }

    /// Lowers the recorded rays into a kernel trace.
    pub fn trace(&self, variant: Variant) -> KernelTrace {
        let mut kernel = KernelTrace::new(format!("render-{variant:?}"));
        for events in &self.events {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu { count: 8 }); // ray setup + shear constants
            t.push(ThreadOp::Shared { count: 1 });
            for ev in events {
                match *ev {
                    Event::Pop => {
                        t.push(ThreadOp::Shared { count: 1 });
                        t.push(ThreadOp::Alu { count: 2 });
                    }
                    Event::NodeTest { node, pushes } => {
                        emit_bvh2_node_test(&mut t, variant, bvh2_node_addr(node as usize));
                        t.push(ThreadOp::Alu { count: 3 });
                        if pushes > 0 {
                            t.push(ThreadOp::Shared { count: pushes });
                        }
                    }
                    Event::TriangleTest { slot } => {
                        emit_triangle_test(&mut t, variant, PRIM_INDEX_BASE + slot as u64 * 48);
                        t.push(ThreadOp::Alu { count: 2 }); // closest-hit update
                    }
                }
            }
            t.push(ThreadOp::Store {
                addr: crate::layout::RESULTS_BASE,
                bytes: 4,
            });
            kernel.push_thread(t);
        }
        kernel
    }

    /// Number of primary rays.
    pub fn ray_count(&self) -> usize {
        self.events.len()
    }
}

/// A heightfield terrain plus a floating pyramid.
fn procedural_scene(grid: usize) -> Vec<TrianglePrimitive> {
    let mut tris = Vec::new();
    let mut id = 0u32;
    let h = |x: f32, z: f32| 0.35 * ((x * 1.7).sin() + (z * 1.3).cos());
    for i in 0..grid {
        for j in 0..grid {
            let step = 8.0 / grid as f32;
            let (x0, z0) = (i as f32 * step - 4.0, j as f32 * step - 4.0);
            let (x1, z1) = (x0 + step, z0 + step);
            let p = |x: f32, z: f32| Vec3::new(x, h(x, z), z);
            for tri in [
                Triangle::new(p(x0, z0), p(x1, z0), p(x0, z1)),
                Triangle::new(p(x1, z0), p(x1, z1), p(x0, z1)),
            ] {
                tris.push(TrianglePrimitive { id, triangle: tri });
                id += 1;
            }
        }
    }
    let apex = Vec3::new(0.0, 2.2, 0.0);
    let base = [
        Vec3::new(-0.8, 0.9, -0.8),
        Vec3::new(0.8, 0.9, -0.8),
        Vec3::new(0.8, 0.9, 0.8),
        Vec3::new(-0.8, 0.9, 0.8),
    ];
    for k in 0..4 {
        tris.push(TrianglePrimitive {
            id,
            triangle: Triangle::new(base[k], base[(k + 1) % 4], apex),
        });
        id += 1;
    }
    tris
}

/// Closest-hit traversal with event recording.
fn record_trace(bvh: &Bvh2, scene: &[TrianglePrimitive], ray: &Ray) -> (Vec<Event>, bool, u64) {
    let mut events = Vec::new();
    let mut t_max = f32::INFINITY;
    let mut hit = false;
    let mut tests = 0u64;
    if bvh.nodes().is_empty() {
        return (events, hit, tests);
    }
    let mut stack = vec![0u32];
    while let Some(i) = stack.pop() {
        events.push(Event::Pop);
        let node = &bvh.nodes()[i as usize];
        match node.content {
            NodeContent::Internal { left, right } => {
                let lh = ray.intersect_aabb(&bvh.nodes()[left as usize].aabb, t_max);
                let rh = ray.intersect_aabb(&bvh.nodes()[right as usize].aabb, t_max);
                let mut pushes = 0;
                match (lh, rh) {
                    (Some(l), Some(r)) => {
                        if l.t_near <= r.t_near {
                            stack.push(right);
                            stack.push(left);
                        } else {
                            stack.push(left);
                            stack.push(right);
                        }
                        pushes = 2;
                    }
                    (Some(_), None) => {
                        stack.push(left);
                        pushes = 1;
                    }
                    (None, Some(_)) => {
                        stack.push(right);
                        pushes = 1;
                    }
                    (None, None) => {}
                }
                events.push(Event::NodeTest { node: i, pushes });
            }
            NodeContent::Leaf { start, count } => {
                for s in start..start + count {
                    let prim = &scene[bvh.prim_indices()[s as usize] as usize];
                    events.push(Event::TriangleTest { slot: s });
                    tests += 1;
                    if let Some(h) = prim.triangle.intersect(ray, t_max) {
                        t_max = h.t();
                        hit = true;
                    }
                }
            }
        }
    }
    (events, hit, tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_sim::config::GpuConfig;
    use hsu_sim::Gpu;

    #[test]
    fn primary_rays_hit_the_scene() {
        let wl = RenderWorkload::build(&RenderParams::default());
        assert!(wl.hit_rate > 0.4, "hit rate {}", wl.hit_rate);
        assert!(wl.mean_triangle_tests > 0.5);
        assert_eq!(wl.ray_count(), 64 * 32);
    }

    #[test]
    fn rt_hardware_accelerates_rendering() {
        let wl = RenderWorkload::build(&RenderParams::default());
        let gpu = Gpu::new(GpuConfig::tiny());
        let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
        let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        assert!(
            hsu.cycles < base.cycles,
            "RT {} vs base {}",
            hsu.cycles,
            base.cycles
        );
        // Both box and triangle modes flow through the unit.
        use hsu_core::pipeline::OperatingMode;
        assert!(hsu.rt.pipeline.completed[OperatingMode::RayBox.index()] > 0);
        assert!(hsu.rt.pipeline.completed[OperatingMode::RayTriangle.index()] > 0);
    }

    #[test]
    fn render_works_on_baseline_rt_unit() {
        // The render kernel uses only baseline RT instructions, so it must
        // run on a unit with hsu_extensions disabled (ISA compatibility,
        // §III-B).
        let wl = RenderWorkload::build(&RenderParams {
            width: 32,
            height: 16,
            ..Default::default()
        });
        let mut cfg = GpuConfig::tiny();
        cfg.hsu = hsu_core::HsuConfig::baseline_rt();
        let r = Gpu::new(cfg).run(&wl.trace(Variant::Hsu)).unwrap();
        assert!(r.rt.isa_instructions > 0);
    }
}
