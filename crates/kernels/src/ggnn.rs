//! GGNN: warp-per-query hierarchical-graph ANN search (paper §V-A, §VI-D).
//!
//! GGNN assigns a whole thread group to each query to exploit intra-query
//! parallelism: the group cooperatively fetches adjacency lists, computes
//! candidate distances, and maintains a shared-memory priority queue / best
//! list (the "parallel cache"). The HSU accelerates exactly the distance
//! tests; queue maintenance stays on the SIMT core (§VI-C).

use hsu_datasets::{query_set, recall_at_k};
use hsu_geometry::point::{Metric, PointSet};
use hsu_graph::{GraphConfig, HnswGraph};
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};

use crate::layout::{adjacency_addr, vector_addr};
use crate::lowering::{emit_coop_distance, Variant};

/// Construction/search parameters.
#[derive(Debug, Clone)]
pub struct GgnnParams {
    /// Dataset size (points generated if no set is supplied).
    pub points: usize,
    /// Dimensionality (only used when generating).
    pub dim: usize,
    /// Number of queries.
    pub queries: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Neighbours returned per query.
    pub k: usize,
    /// Best-first queue width.
    pub ef: usize,
    /// Graph degree.
    pub m: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GgnnParams {
    fn default() -> Self {
        GgnnParams {
            points: 2000,
            dim: 64,
            queries: 64,
            metric: Metric::Euclidean,
            k: 10,
            ef: 32,
            m: 12,
            seed: 1,
        }
    }
}

/// Warp-level events recorded during the functional search.
#[derive(Debug, Clone)]
enum WarpEvent {
    /// Cooperative fetch of one adjacency list.
    LoadAdjacency { layer: usize, node: u32, count: u32 },
    /// Distance tests against a batch of candidate vectors.
    Distances { candidates: Vec<u32> },
    /// Shared-memory priority-queue / visited-cache operations.
    QueueOps { count: u32 },
    /// Scalar bookkeeping on the SIMT core.
    Scalar { count: u32 },
}

/// A prepared GGNN workload: graph + recorded per-query event streams.
#[derive(Debug)]
pub struct GgnnWorkload {
    params: GgnnParams,
    dim: usize,
    metric: Metric,
    events: Vec<Vec<WarpEvent>>,
    /// Recall@k of the recorded search against brute force.
    pub recall: f64,
}

impl GgnnWorkload {
    /// Builds the graph over a generated Gaussian-mixture set and records
    /// the search for every query.
    pub fn build(params: &GgnnParams) -> Self {
        let data = gaussian_set(params.points, params.dim, params.seed);
        Self::build_from_points(params, &data)
    }

    /// Builds over a caller-supplied point set (the dataset catalog path).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn build_from_points(params: &GgnnParams, data: &PointSet) -> Self {
        let graph = HnswGraph::build(data, params.metric, Self::graph_config(params), params.seed);
        Self::build_with_graph(params, data, &graph)
    }

    /// The graph-construction config `build_from_points` derives from
    /// `params` — exposed so cache layers key and rebuild the index with
    /// exactly the same settings.
    pub fn graph_config(params: &GgnnParams) -> GraphConfig {
        GraphConfig {
            m: params.m,
            ef_construction: params.ef.max(32),
            ..Default::default()
        }
    }

    /// Records the searches over an already-built graph (the archive-cache
    /// restore path). `graph` must have been built over `data` with
    /// [`Self::graph_config`] and `params.seed` — the caller's content key
    /// guarantees it; given that, the result is byte-identical to
    /// [`Self::build_from_points`].
    pub fn build_with_graph(params: &GgnnParams, data: &PointSet, graph: &HnswGraph) -> Self {
        let queries = query_set(data, params.queries, params.seed ^ 0x5eed);

        let mut events = Vec::with_capacity(queries.len());
        let mut found_all = Vec::with_capacity(queries.len());
        for q in queries.iter() {
            let (evs, found) = record_search(graph, data, q, params.k, params.ef);
            events.push(evs);
            found_all.push(found);
        }
        let truth: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| {
                data.k_nearest_brute_force(q, params.k, params.metric)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        let recall = recall_at_k(&found_all, &truth, params.k);
        GgnnWorkload {
            params: params.clone(),
            dim: data.dim(),
            metric: params.metric,
            events,
            recall,
        }
    }

    /// The parameters the workload was built with.
    pub fn params(&self) -> &GgnnParams {
        &self.params
    }

    /// Total distance tests recorded (HSU-offloadable work).
    pub fn distance_tests(&self) -> u64 {
        self.events
            .iter()
            .flatten()
            .map(|e| match e {
                WarpEvent::Distances { candidates } => candidates.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Lowers the recorded events into a kernel trace.
    pub fn trace(&self, variant: Variant) -> KernelTrace {
        let mut kernel = KernelTrace::new(format!("ggnn-{variant:?}"));
        for events in &self.events {
            let mut lanes: Vec<ThreadTrace> = (0..32).map(|_| ThreadTrace::new()).collect();
            for ev in events {
                match ev {
                    WarpEvent::LoadAdjacency { layer, node, count } => {
                        // Coalesced: lane i fetches neighbour id i.
                        let base = adjacency_addr(*layer, *node as usize, self.params.m);
                        for (lane, t) in lanes.iter_mut().enumerate() {
                            if (lane as u32) < *count {
                                t.push(ThreadOp::Load {
                                    addr: base + lane as u64 * 4,
                                    bytes: 4,
                                });
                            }
                        }
                    }
                    WarpEvent::Distances { candidates } => match variant {
                        Variant::Hsu => {
                            // One HSU instruction per candidate, spread across
                            // lanes: the warp instruction carries up to 32
                            // independent multi-beat distances.
                            for chunk in candidates.chunks(32) {
                                for (lane, &cand) in chunk.iter().enumerate() {
                                    lanes[lane].push(ThreadOp::HsuDistance {
                                        metric: self.metric,
                                        dim: self.dim as u32,
                                        candidate_addr: vector_addr(cand as usize, self.dim),
                                    });
                                }
                            }
                        }
                        Variant::Baseline | Variant::BaselineStripped => {
                            // Cooperative: the warp computes one candidate at
                            // a time, all 32 lanes partitioning dimensions.
                            for &cand in candidates {
                                let addr = vector_addr(cand as usize, self.dim);
                                for (lane, t) in lanes.iter_mut().enumerate() {
                                    emit_coop_distance(
                                        t,
                                        variant,
                                        self.metric,
                                        self.dim as u32,
                                        addr,
                                        lane as u32,
                                    );
                                }
                            }
                        }
                    },
                    WarpEvent::QueueOps { count } => {
                        for t in &mut lanes {
                            t.push(ThreadOp::Shared { count: *count });
                        }
                    }
                    WarpEvent::Scalar { count } => {
                        for t in &mut lanes {
                            t.push(ThreadOp::Alu { count: *count });
                        }
                    }
                }
            }
            for t in lanes {
                kernel.push_thread(t);
            }
        }
        kernel
    }
}

/// Generates a clustered Gaussian-mixture point set (standalone so unit
/// tests avoid the datasets crate's catalog sizes).
fn gaussian_set(n: usize, dim: usize, seed: u64) -> PointSet {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let clusters = (n as f64).sqrt().ceil() as usize;
    let centres: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let c = &centres[rng.gen_range(0..clusters)];
        for v in c {
            data.push(v + rng.gen_range(-0.2f32..0.2));
        }
    }
    PointSet::from_rows(dim, data)
}

/// Best-first graph search that both computes the result and records the
/// warp-level event stream (mirrors `HnswGraph::search`).
fn record_search(
    graph: &HnswGraph,
    data: &PointSet,
    query: &[f32],
    k: usize,
    ef: usize,
) -> (Vec<WarpEvent>, Vec<u32>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let metric = graph.metric();
    let mut events = Vec::new();
    let mut entry = graph.entry_point();
    events.push(WarpEvent::Scalar { count: 8 }); // query setup / norm precompute

    // Greedy descent through the upper layers.
    for layer in (1..graph.layer_count()).rev() {
        let mut cur_d = metric.distance(query, data.point(entry as usize));
        events.push(WarpEvent::Distances {
            candidates: vec![entry],
        });
        loop {
            let neighbors = graph.neighbors(layer, entry);
            if neighbors.is_empty() {
                break;
            }
            events.push(WarpEvent::LoadAdjacency {
                layer,
                node: entry,
                count: neighbors.len() as u32,
            });
            events.push(WarpEvent::Distances {
                candidates: neighbors.to_vec(),
            });
            events.push(WarpEvent::Scalar { count: 4 }); // argmin select
            let (best, best_d) = neighbors
                .iter()
                .map(|&n| (n, metric.distance(query, data.point(n as usize))))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            if best_d < cur_d {
                cur_d = best_d;
                entry = best;
            } else {
                break;
            }
        }
    }

    // Bounded best-first on the base layer with the parallel cache.
    let ef = ef.max(k);
    let mut visited = vec![false; data.len()];
    let mut frontier: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut best: BinaryHeap<(u64, u32)> = BinaryHeap::new();
    let key = |d: f32| d.to_bits() as u64;

    let d0 = metric.distance(query, data.point(entry as usize));
    events.push(WarpEvent::Distances {
        candidates: vec![entry],
    });
    events.push(WarpEvent::QueueOps { count: 2 });
    visited[entry as usize] = true;
    frontier.push(Reverse((key(d0), entry)));
    best.push((key(d0), entry));

    while let Some(Reverse((d, node))) = frontier.pop() {
        events.push(WarpEvent::QueueOps { count: 1 });
        let worst = best.peek().map(|&(w, _)| w).unwrap_or(u64::MAX);
        if d > worst && best.len() >= ef {
            break;
        }
        let neighbors = graph.neighbors(0, node);
        if neighbors.is_empty() {
            continue;
        }
        events.push(WarpEvent::LoadAdjacency {
            layer: 0,
            node,
            count: neighbors.len() as u32,
        });
        // Visited-cache check: one shared op per neighbour.
        events.push(WarpEvent::QueueOps {
            count: neighbors.len() as u32,
        });
        let fresh: Vec<u32> = neighbors
            .iter()
            .copied()
            .filter(|&n| !visited[n as usize])
            .collect();
        if fresh.is_empty() {
            continue;
        }
        for &n in &fresh {
            visited[n as usize] = true;
        }
        events.push(WarpEvent::Distances {
            candidates: fresh.clone(),
        });
        let mut queue_ops = 0;
        for &n in &fresh {
            let dn = metric.distance(query, data.point(n as usize));
            let worst = best.peek().map(|&(w, _)| w).unwrap_or(u64::MAX);
            if best.len() < ef || key(dn) < worst {
                frontier.push(Reverse((key(dn), n)));
                best.push((key(dn), n));
                queue_ops += 2;
                if best.len() > ef {
                    best.pop();
                    queue_ops += 1;
                }
            }
        }
        events.push(WarpEvent::QueueOps {
            count: queue_ops.max(1),
        });
    }

    let mut out: Vec<(u64, u32)> = best.into_iter().collect();
    out.sort();
    out.truncate(k);
    events.push(WarpEvent::Scalar { count: 4 }); // result writeback
    (events, out.into_iter().map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_sim::config::GpuConfig;
    use hsu_sim::Gpu;

    fn small() -> GgnnWorkload {
        GgnnWorkload::build(&GgnnParams {
            points: 600,
            dim: 32,
            queries: 16,
            ef: 48,
            m: 12,
            ..Default::default()
        })
    }

    #[test]
    fn search_is_accurate() {
        let wl = small();
        assert!(wl.recall >= 0.8, "recall {}", wl.recall);
        assert!(wl.distance_tests() > 0);
    }

    #[test]
    fn hsu_variant_is_faster() {
        let wl = small();
        let gpu = Gpu::new(GpuConfig::tiny());
        let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
        let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        let stripped = gpu.run(&wl.trace(Variant::BaselineStripped)).unwrap();
        assert!(
            hsu.cycles < base.cycles,
            "HSU {} vs baseline {}",
            hsu.cycles,
            base.cycles
        );
        assert!(stripped.cycles < base.cycles);
        // The HSU run must actually use the unit.
        assert!(hsu.rt.isa_instructions > 0);
        assert_eq!(base.rt.isa_instructions, 0);
    }

    #[test]
    fn angular_metric_works() {
        let wl = GgnnWorkload::build(&GgnnParams {
            points: 500,
            dim: 48,
            queries: 8,
            metric: Metric::Angular,
            ef: 64,
            m: 16,
            ..Default::default()
        });
        assert!(wl.recall >= 0.6, "angular recall {}", wl.recall);
        let trace = wl.trace(Variant::Hsu);
        assert!(trace.thread_count() == 8 * 32);
    }

    #[test]
    fn traces_have_one_warp_per_query() {
        let wl = small();
        for v in Variant::ALL {
            let t = wl.trace(v);
            assert_eq!(t.thread_count(), 16 * 32, "{v:?}");
        }
    }
}
