//! FLANN: thread-per-query k-d tree ANN search (paper §V-A, §VI-F).
//!
//! The k-d traversal step is a single scalar compare ("little benefit of
//! offloading the scalar value traversal test", §VI-F), so the HSU only
//! accelerates the leaf distance computations. FLANN's CUDA path is limited
//! to 3-D data, matching the paper's F-prefixed datasets.

use hsu_datasets::query_set;
use hsu_geometry::point::{Metric, PointSet};
use hsu_kdtree::{KdNode, KdTree};
use hsu_sim::trace::{KernelTrace, ThreadOp, ThreadTrace};

use crate::layout::{kd_node_addr, vector_addr};
use crate::lowering::{emit_distance, Variant};

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct FlannParams {
    /// Dataset size (generated uniform cube when no set is supplied).
    pub points: usize,
    /// Number of queries.
    pub queries: usize,
    /// Neighbours per query.
    pub k: usize,
    /// Best-bin-first distance-test budget.
    pub checks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlannParams {
    fn default() -> Self {
        FlannParams {
            points: 2000,
            queries: 128,
            k: 5,
            checks: 96,
            seed: 1,
        }
    }
}

/// Per-thread search events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Internal-node visit: load the split node, scalar compare, branch.
    Split { node: u32 },
    /// Frontier heap push/pop.
    Heap { ops: u32 },
    /// Leaf candidate distance test.
    LeafDistance { point: u32 },
}

/// A prepared FLANN workload.
#[derive(Debug)]
pub struct FlannWorkload {
    events: Vec<Vec<Event>>,
    dim: usize,
    points: usize,
    /// Recall@1 against brute force.
    pub recall: f64,
}

impl FlannWorkload {
    /// Builds over a generated clustered 3-D set (Gaussian blobs — the
    /// scanned-surface / cosmology datasets FLANN is evaluated on are highly
    /// non-uniform, which is what makes the kernel divergent).
    pub fn build(params: &FlannParams) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(params.seed);
        let clusters = (params.points / 64).max(1);
        let centres: Vec<[f32; 3]> = (0..clusters)
            .map(|_| {
                [
                    rng.gen_range(0.0f32..8.0),
                    rng.gen_range(0.0f32..8.0),
                    rng.gen_range(0.0f32..8.0),
                ]
            })
            .collect();
        let mut data = Vec::with_capacity(params.points * 3);
        for _ in 0..params.points {
            let c = centres[rng.gen_range(0..clusters)];
            for v in c {
                data.push(v + rng.gen_range(-0.15f32..0.15));
            }
        }
        Self::build_from_points(params, &PointSet::from_rows(3, data))
    }

    /// Builds over a caller-supplied point set.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn build_from_points(params: &FlannParams, data: &PointSet) -> Self {
        assert!(!data.is_empty(), "empty dataset");
        Self::build_with_tree(params, data, &Self::build_tree(data))
    }

    /// Builds the k-d tree `build_from_points` uses: bucket size 4, because
    /// FLANN's CUDA trees are deep, so traversal (the non-offloadable part)
    /// dominates leaf distance work. Exposed so cache layers rebuild the
    /// index identically.
    pub fn build_tree(data: &PointSet) -> KdTree {
        KdTree::build_with(data, Metric::Euclidean, 4, None)
    }

    /// Records the searches over an already-built tree (the archive-cache
    /// restore path). `tree` must equal [`Self::build_tree`]`(data)` — the
    /// caller's content key guarantees it; given that, the result is
    /// byte-identical to [`Self::build_from_points`].
    pub fn build_with_tree(params: &FlannParams, data: &PointSet, tree: &KdTree) -> Self {
        let queries = query_set(data, params.queries, params.seed ^ 0xf1a);

        let mut events = Vec::with_capacity(queries.len());
        let mut hits = 0usize;
        for q in queries.iter() {
            let (evs, found) = record_bbf(tree, data, q, params.k, params.checks);
            let exact = data
                .nearest_brute_force(q, Metric::Euclidean)
                .map(|(i, _)| i);
            if found.first().map(|&f| f as usize) == exact {
                hits += 1;
            }
            events.push(evs);
        }
        FlannWorkload {
            events,
            dim: data.dim(),
            points: data.len(),
            recall: hits as f64 / queries.len() as f64,
        }
    }

    /// Lowers the recorded searches into a kernel trace.
    pub fn trace(&self, variant: Variant) -> KernelTrace {
        let mut kernel = KernelTrace::new(format!("flann-{variant:?}"));
        for events in &self.events {
            let mut t = ThreadTrace::new();
            t.push(ThreadOp::Alu { count: 4 });
            for ev in events {
                match *ev {
                    Event::Split { node } => {
                        // The traversal compare is NOT offloaded (§VI-F): a
                        // 16-byte node load plus compare/branch, identical in
                        // every variant.
                        t.push(ThreadOp::Load {
                            addr: kd_node_addr(node as usize),
                            bytes: 16,
                        });
                        t.push(ThreadOp::Alu { count: 3 });
                    }
                    Event::Heap { ops } => {
                        // The BBF frontier heap: sift operations cost a few
                        // shared accesses each.
                        t.push(ThreadOp::Shared { count: ops * 3 });
                    }
                    Event::LeafDistance { point } => {
                        // Candidate index load + address arithmetic happen in
                        // every variant (FLANN leaves store permuted indices).
                        t.push(ThreadOp::Load {
                            addr: crate::layout::PRIM_INDEX_BASE + point as u64 * 4,
                            bytes: 4,
                        });
                        t.push(ThreadOp::Alu { count: 2 });
                        match variant {
                            Variant::Hsu => {
                                // One CISC fetch of the (AoS) candidate point.
                                emit_distance(
                                    &mut t,
                                    variant,
                                    Metric::Euclidean,
                                    self.dim as u32,
                                    vector_addr(point as usize, self.dim),
                                );
                            }
                            Variant::Baseline => {
                                // FLANN's CUDA layout is struct-of-arrays:
                                // one scalar load per coordinate from the
                                // separate axis arrays, then the FMA chain.
                                let axis_stride = (self.points * 4) as u64;
                                for axis in 0..self.dim as u64 {
                                    t.push(ThreadOp::Load {
                                        addr: crate::layout::VECTORS_BASE
                                            + axis * axis_stride
                                            + point as u64 * 4,
                                        bytes: 4,
                                    });
                                }
                                t.push(ThreadOp::Alu {
                                    count: self.dim as u32 * 2 + 4,
                                });
                            }
                            Variant::BaselineStripped => {}
                        }
                        t.push(ThreadOp::Alu { count: 2 }); // k-best insert test
                    }
                }
            }
            t.push(ThreadOp::Store {
                addr: crate::layout::RESULTS_BASE,
                bytes: 8,
            });
            kernel.push_thread(t);
        }
        kernel
    }

    /// Number of query threads.
    pub fn query_count(&self) -> usize {
        self.events.len()
    }
}

/// Best-bin-first search with event recording (mirrors
/// `KdTree::knn_best_bin_first`).
fn record_bbf(
    tree: &KdTree,
    data: &PointSet,
    query: &[f32],
    k: usize,
    checks: usize,
) -> (Vec<Event>, Vec<u32>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut events = Vec::new();
    let mut results: BinaryHeap<(u64, u32)> = BinaryHeap::new();
    if tree.nodes().is_empty() {
        return (events, Vec::new());
    }
    let key = |d: f32| d.to_bits() as u64;
    let mut frontier: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    frontier.push(Reverse((0, 0)));
    let mut checked = 0usize;
    while let Some(Reverse((_, start))) = frontier.pop() {
        events.push(Event::Heap { ops: 1 });
        if checked >= checks {
            break;
        }
        let mut node = start;
        loop {
            match tree.nodes()[node as usize] {
                KdNode::Split {
                    axis,
                    value,
                    left,
                    right,
                } => {
                    events.push(Event::Split { node });
                    let diff = query[axis as usize] - value;
                    let (near, far) = if diff < 0.0 {
                        (left, right)
                    } else {
                        (right, left)
                    };
                    frontier.push(Reverse((key(diff * diff), far)));
                    events.push(Event::Heap { ops: 1 });
                    node = near;
                }
                KdNode::Leaf { start, count } => {
                    for s in start..start + count {
                        let idx = tree.indices()[s as usize];
                        events.push(Event::LeafDistance { point: idx });
                        checked += 1;
                        let d = Metric::Euclidean.distance(query, data.point(idx as usize));
                        results.push((key(d), idx));
                        if results.len() > k {
                            results.pop();
                        }
                    }
                    break;
                }
            }
        }
    }
    let mut out: Vec<(u64, u32)> = results.into_iter().collect();
    out.sort();
    (events, out.into_iter().map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsu_sim::config::GpuConfig;
    use hsu_sim::Gpu;

    #[test]
    fn search_is_accurate() {
        let wl = FlannWorkload::build(&FlannParams {
            points: 1500,
            queries: 64,
            ..Default::default()
        });
        assert!(wl.recall >= 0.8, "recall {}", wl.recall);
    }

    #[test]
    fn hsu_speedup_is_modest() {
        // §VI-F: the k-d tree benefits least of the three ANN structures —
        // the traversal compare stays on the SM.
        let wl = FlannWorkload::build(&FlannParams {
            points: 1500,
            queries: 1024,
            ..Default::default()
        });
        let gpu = Gpu::new(GpuConfig::tiny());
        let hsu = gpu.run(&wl.trace(Variant::Hsu)).unwrap();
        let base = gpu.run(&wl.trace(Variant::Baseline)).unwrap();
        assert!(
            hsu.cycles < base.cycles,
            "HSU {} vs base {}",
            hsu.cycles,
            base.cycles
        );
        let speedup = base.cycles as f64 / hsu.cycles as f64;
        assert!(
            speedup < 2.0,
            "k-d tree speedup implausibly large: {speedup}"
        );
    }

    #[test]
    fn split_loads_survive_all_variants() {
        let wl = FlannWorkload::build(&FlannParams {
            points: 400,
            queries: 8,
            ..Default::default()
        });
        let base = wl.trace(Variant::Baseline);
        let stripped = wl.trace(Variant::BaselineStripped);
        // Stripped removes only distances, not traversal loads.
        assert!(stripped.total_instructions() > 0);
        assert!(stripped.total_instructions() < base.total_instructions());
    }
}
