//! Point-cloud neighbour search: BVH (RTNN-style) vs k-d tree (FLANN-style).
//!
//! Builds both 3-D indices over a synthetic laser-scan stand-in, runs radius
//! and nearest-neighbour queries, and compares traversal work — the
//! structural difference behind the paper's BVH-NN vs FLANN results.
//!
//! Run with: `cargo run --release --example point_cloud`

use hsu::bvh::Bvh4;
use hsu::prelude::*;

fn main() {
    // A scanned-surface stand-in (Stanford-bunny shape class: points on a
    // 2-D manifold embedded in 3-D).
    let cloud = Dataset::generate_scaled(DatasetId::Bunny, 3, Some(20_000))
        .points()
        .expect("point dataset")
        .clone();
    println!("cloud: {} points (surface-sampled)", cloud.len());

    // Pick a radius from the local density.
    let sample_nn: f32 = (0..64)
        .map(|i| {
            cloud
                .nearest_brute_force_excluding(cloud.point(i), i, Metric::Euclidean)
                .1
                .sqrt()
        })
        .sum::<f32>()
        / 64.0;
    let radius = sample_nn * 2.0;
    println!("search radius: {radius:.4} (2x mean NN distance)");

    // BVH over dilated leaf boxes, exactly the RTNN construction.
    let prims: Vec<PointPrimitive> = cloud
        .iter()
        .enumerate()
        .map(|(i, p)| PointPrimitive::new(i as u32, Vec3::new(p[0], p[1], p[2]), radius))
        .collect();
    let bvh2 = LbvhBuilder::default().build(&prims);
    let bvh4 = Bvh4::from_bvh2(&bvh2);
    bvh2.validate(&prims).expect("LBVH invariants hold");

    // k-d tree over the raw points.
    let kdtree = KdTree::build(&cloud, Metric::Euclidean);

    let query = {
        let p = cloud.point(1234);
        Vec3::new(p[0] + radius * 0.3, p[1], p[2])
    };

    let (hits2, stats2) = bvh2.radius_search_counted(&prims, query, radius);
    let (hits4, stats4) = bvh4.radius_search_counted(&prims, query, radius);
    let (nn, kd_stats) = kdtree.nearest_exact(&cloud, &[query.x, query.y, query.z]);

    println!("\nradius search around a perturbed cloud point:");
    println!(
        "  BVH2: {:>3} hits | {:>4} node tests (one RAY_INTERSECT each), {:>3} distance tests",
        hits2.len(),
        stats2.nodes_visited,
        stats2.primitive_tests
    );
    println!(
        "  BVH4: {:>3} hits | {:>4} node tests (4-wide, §VI-E's suggested upgrade)",
        hits4.len(),
        stats4.nodes_visited
    );
    assert_eq!(hits2.len(), hits4.len(), "BVH2 and BVH4 must agree");

    let (nn_id, nn_d2) = nn.expect("non-empty cloud");
    println!(
        "  k-d : nearest = #{nn_id} at d={:.4} | {} splits (scalar compares), {} distance tests",
        nn_d2.sqrt(),
        kd_stats.splits_visited,
        kd_stats.distance_tests
    );
    println!(
        "\nthe BVH offloads its node tests to the HSU; the k-d tree's scalar\n\
         splits stay on the SM — that is why the paper measures +33.9% for\n\
         BVH-NN but only +16.4% for FLANN."
    );
}
