//! Classic ray tracing on the baseline RT unit's data structures: a triangle
//! scene in a BVH, closest-hit traversal, and a tiny ASCII rendering.
//!
//! This exercises the part of the HSU that is plain RT-unit functionality:
//! watertight ray-triangle tests, slab box tests, and front-to-back BVH2
//! traversal — everything `RAY_INTERSECT` does in hardware.
//!
//! Run with: `cargo run --release --example ray_tracing`

use hsu::prelude::*;

/// A procedural "terrain" of triangles over a grid, plus a floating pyramid.
fn build_scene() -> Vec<TrianglePrimitive> {
    let mut tris = Vec::new();
    let mut id = 0u32;
    let n = 24;
    let h = |x: f32, z: f32| 0.35 * ((x * 1.7).sin() + (z * 1.3).cos());
    for i in 0..n {
        for j in 0..n {
            let (x0, z0) = (
                i as f32 / n as f32 * 8.0 - 4.0,
                j as f32 / n as f32 * 8.0 - 4.0,
            );
            let step = 8.0 / n as f32;
            let (x1, z1) = (x0 + step, z0 + step);
            let p = |x: f32, z: f32| Vec3::new(x, h(x, z), z);
            for tri in [
                Triangle::new(p(x0, z0), p(x1, z0), p(x0, z1)),
                Triangle::new(p(x1, z0), p(x1, z1), p(x0, z1)),
            ] {
                tris.push(TrianglePrimitive { id, triangle: tri });
                id += 1;
            }
        }
    }
    // Pyramid.
    let apex = Vec3::new(0.0, 2.2, 0.0);
    let base = [
        Vec3::new(-0.8, 0.9, -0.8),
        Vec3::new(0.8, 0.9, -0.8),
        Vec3::new(0.8, 0.9, 0.8),
        Vec3::new(-0.8, 0.9, 0.8),
    ];
    for k in 0..4 {
        tris.push(TrianglePrimitive {
            id,
            triangle: Triangle::new(base[k], base[(k + 1) % 4], apex),
        });
        id += 1;
    }
    tris
}

fn main() {
    let scene = build_scene();
    let bvh = LbvhBuilder::default().max_leaf_size(2).build(&scene);
    bvh.validate(&scene).expect("scene BVH is well-formed");
    println!(
        "scene: {} triangles, BVH of {} nodes, depth {}",
        scene.len(),
        bvh.node_count(),
        bvh.depth()
    );

    // Render a small ASCII frame by shading with the hit distance.
    let (w, h) = (72usize, 26usize);
    let eye = Vec3::new(0.0, 2.4, -6.5);
    let mut total_nodes = 0u64;
    let mut total_tris = 0u64;
    let mut frame = String::new();
    for py in 0..h {
        for px in 0..w {
            let u = px as f32 / w as f32 * 2.0 - 1.0;
            let v = 1.0 - py as f32 / h as f32 * 2.0;
            let dir = Vec3::new(u * 1.2, v * 0.62, 1.0);
            let ray = Ray::new(eye, dir);
            let (hit, stats) = bvh.intersect_ray(&scene, &ray);
            total_nodes += stats.nodes_visited;
            total_tris += stats.primitive_tests;
            frame.push(match hit {
                Some((_, tri_hit)) => {
                    let t = tri_hit.t();
                    let shades = [b'@', b'#', b'+', b'=', b'-', b'.'];
                    let idx = (((t - 5.0) / 4.0).clamp(0.0, 0.99) * shades.len() as f32) as usize;
                    shades[idx] as char
                }
                None => ' ',
            });
        }
        frame.push('\n');
    }
    println!("{frame}");
    let rays = (w * h) as u64;
    println!(
        "{} rays | {:.1} box-node tests/ray (RAY_INTERSECT ops), {:.1} triangle tests/ray",
        rays,
        total_nodes as f64 / rays as f64,
        total_tris as f64 / rays as f64
    );
}
