//! Key-value store: B+-tree lookups with KEY_COMPARE acceleration.
//!
//! Bulk-builds a Rodinia-style B+-tree (branch factor 256), serves point and
//! range queries, and shows how the HSU's `KEY_COMPARE` collapses each
//! internal node's separator scan into `ceil(n/36)` instructions.
//!
//! Run with: `cargo run --release --example kv_store`

use hsu::kernels::btree::{BtreeParams, BtreeWorkload};
use hsu::prelude::*;
use hsu::unit::intrinsics;

fn main() {
    // A 200k-entry store with 24-bit keys (exact in f32 for KEY_COMPARE).
    let pairs: Vec<(u32, u64)> = (0..200_000u32)
        .map(|k| (k * 83 % (1 << 24), u64::from(k)))
        .collect();
    let tree = BPlusTree::bulk_build(pairs.clone(), 256);
    tree.validate().expect("B+-tree invariants hold");
    println!(
        "tree: {} keys, height {}, branch factor {}",
        tree.len(),
        tree.height(),
        tree.branch()
    );

    // Point lookups with work counters.
    let (value, stats) = tree.get_counted(83 * 1000);
    println!(
        "get(k1000) = {value:?} | {} internal nodes, {} separators scanned",
        stats.internal_visits, stats.separators_scanned
    );
    println!(
        "  -> KEY_COMPARE instructions with the HSU: {}",
        stats.separators_scanned.div_ceil(36)
    );

    // The intrinsic itself: which child follows key 500?
    let separators: Vec<f32> = (0..255).map(|i| (i * 64) as f32).collect();
    println!(
        "key_compare(500.0, 255 separators) -> child {}",
        intrinsics::key_compare(500.0, &separators)
    );

    // Range scan down the leaf chain.
    let lo = 1_000_000;
    let hi = 1_000_600;
    let in_range = tree.range(lo, hi);
    println!("range [{lo}, {hi}): {} entries", in_range.len());

    // End-to-end: batched lookups on the simulated GPU, HSU vs baseline.
    let wl = BtreeWorkload::build(&BtreeParams {
        keys: 100_000,
        queries: 4096,
        branch: 256,
        seed: 3,
    });
    assert_eq!(
        wl.correctness, 1.0,
        "every lookup verified against BTreeMap"
    );
    let gpu = Gpu::new(GpuConfig::small());
    let hsu = gpu.run(&wl.trace(Variant::Hsu)).expect("simulation failed");
    let base = gpu
        .run(&wl.trace(Variant::Baseline))
        .expect("simulation failed");
    println!(
        "\n4096 GPU lookups: baseline {} cycles, HSU {} cycles ({:+.1}%, paper: +13.5% avg)",
        base.cycles,
        hsu.cycles,
        (base.cycles as f64 / hsu.cycles as f64 - 1.0) * 100.0
    );
}
