//! Quickstart: the HSU in five minutes.
//!
//! Builds a small vector index, runs an approximate nearest-neighbour
//! search, then simulates the same workload on a GPU with and without the
//! HSU to show the headline effect of the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use hsu::kernels::ggnn::{GgnnParams, GgnnWorkload};
use hsu::prelude::*;

fn main() {
    // 1. The device library: distances exactly as POINT_EUCLID computes them.
    let q = vec![0.25_f32; 96];
    let c = vec![0.75_f32; 96];
    println!(
        "euclid_dist(q, c)   = {:.3}",
        intrinsics::euclid_dist(&q, &c)
    );
    println!(
        "POINT_EUCLID beats  = {} (96 dims / 16-wide pipeline)",
        intrinsics::euclid_beats(96)
    );

    // 2. A hierarchical search structure: HNSW graph over a synthetic
    //    embedding set (deep1b's shape: 96 dimensions).
    let data = Dataset::generate_scaled(DatasetId::Deep1b, 42, Some(2_000))
        .points()
        .expect("point dataset")
        .clone();
    let graph = HnswGraph::build(&data, Metric::Angular, GraphConfig::default(), 42);
    let (neighbors, stats) = graph.search(&data, data.point(123), 5, 64);
    println!(
        "\ngraph search: top-5 of point #123 -> {:?}",
        neighbors.iter().map(|&(i, _)| i).collect::<Vec<_>>()
    );
    println!(
        "  distance tests {} | queue ops {} (only the former offload to the HSU)",
        stats.distance_tests, stats.queue_ops
    );

    // 3. The paper's experiment in miniature: simulate the search kernel on
    //    a GPU with and without the HSU.
    let params = GgnnParams {
        points: data.len(),
        dim: data.dim(),
        queries: 32,
        metric: Metric::Angular,
        k: 10,
        ef: 64,
        m: 16,
        seed: 42,
    };
    let workload = GgnnWorkload::build_from_points(&params, &data);
    println!("\nworkload recall@10 = {:.3}", workload.recall);

    let gpu = Gpu::new(GpuConfig::small());
    let hsu = gpu
        .run(&workload.trace(Variant::Hsu))
        .expect("simulation failed");
    let baseline = gpu
        .run(&workload.trace(Variant::Baseline))
        .expect("simulation failed");
    println!("baseline (no RT hardware): {:>10} cycles", baseline.cycles);
    println!("with HSU:                  {:>10} cycles", hsu.cycles);
    println!(
        "speedup:                   {:>9.1}%  (paper: +24.8% average for GGNN)",
        (baseline.cycles as f64 / hsu.cycles as f64 - 1.0) * 100.0
    );
}
