//! Vector search: a recommendation-system-style embedding index.
//!
//! Builds HNSW graphs over synthetic stand-ins for three of the paper's
//! high-dimensional datasets, measures recall against brute force, and
//! reports how many HSU instructions each query costs at different datapath
//! widths (the Fig. 10 trade-off, from the software side).
//!
//! Run with: `cargo run --release --example vector_search`

use hsu::prelude::*;

fn main() {
    for (id, n, queries) in [
        (DatasetId::LastFm, 4_000, 50),  // 65-dim, angular
        (DatasetId::Glove, 4_000, 50),   // 200-dim, angular
        (DatasetId::Sift10k, 4_000, 50), // 128-dim, euclidean
    ] {
        let spec = hsu::datasets::spec(id);
        let metric = spec.metric.expect("ANN dataset");
        let data = Dataset::generate_scaled(id, 1, Some(n))
            .points()
            .expect("point dataset")
            .clone();
        let graph = HnswGraph::build(&data, metric, GraphConfig::default(), 1);

        // Held-out queries + exact ground truth.
        let qs = hsu::datasets::query_set(&data, queries, 2);
        let truth = hsu::datasets::ground_truth_knn(&data, &qs, 10, metric);

        let mut found = Vec::new();
        let mut dist_tests = 0u64;
        let mut queue_ops = 0u64;
        for q in qs.iter() {
            let (hits, stats) = graph.search(&data, q, 10, 96);
            dist_tests += stats.distance_tests;
            queue_ops += stats.queue_ops;
            found.push(hits.into_iter().map(|(i, _)| i).collect::<Vec<_>>());
        }
        let recall = hsu::datasets::recall_at_k(&found, &truth, 10);

        // HSU instruction cost per distance at several datapath widths.
        let beats: Vec<usize> = [4usize, 8, 16, 32]
            .iter()
            .map(|&w| {
                HsuConfig::default()
                    .with_euclid_width(w)
                    .beats_for(metric, spec.dims)
            })
            .collect();

        println!(
            "{:<6} dim {:>4} ({}) | recall@10 {:.3} | {:.0} dist-tests/query, {:.0} queue-ops/query",
            spec.abbr,
            spec.dims,
            metric,
            recall,
            dist_tests as f64 / queries as f64,
            queue_ops as f64 / queries as f64,
        );
        println!(
            "       beats per distance at euclid-width 4/8/16/32: {:?}",
            beats
        );
    }
}
