//! Vector search: a recommendation-system-style embedding service.
//!
//! Builds HNSW indexes over synthetic stand-ins for three of the paper's
//! high-dimensional datasets and serves seeded query streams through the
//! sharded `hsu::serve` engine — the same batched submission path that
//! `servebench` load-tests. Measures recall against brute force, reports
//! sustained throughput plus the replay digest (byte-stable across shard
//! and worker topologies), and shows how many HSU instructions each
//! distance costs at different datapath widths (the Fig. 10 trade-off,
//! from the software side).
//!
//! Run with: `cargo run --release --example vector_search`

use std::sync::Arc;
use std::time::Instant;

use hsu::prelude::*;
use hsu::serve::prelude::*;

fn main() {
    for (id, n, queries) in [
        (DatasetId::LastFm, 4_000, 50),  // 65-dim, angular
        (DatasetId::Glove, 4_000, 50),   // 200-dim, angular
        (DatasetId::Sift10k, 4_000, 50), // 128-dim, euclidean
    ] {
        let spec = hsu::datasets::spec(id);
        let metric = spec.metric.expect("ANN dataset");

        // Open the index (in-memory here; pass a real archive dir to
        // persist the build across runs) and stand up a small service.
        let cache = ArchiveCache::disabled();
        let index = GraphIndex::open(&cache, id, n, 1, 10, 96).expect("open graph index");
        let data = index.data().clone();
        let engine = Engine::new(
            Arc::new(index),
            EngineConfig {
                shards: 2,
                workers_per_shard: 1,
                batch: 16,
                queue_capacity: 256,
                ..Default::default()
            },
        );

        // Held-out seeded query stream + exact ground truth.
        let stream = hsu::datasets::QueryStream::new(&data, 2);
        let qs: Vec<Vec<f32>> = (0..queries).map(|i| stream.nth(&data, i as u64)).collect();
        let mut qset = PointSet::empty(data.dim());
        for q in &qs {
            qset.push(q);
        }
        let truth = hsu::datasets::ground_truth_knn(&data, &qset, 10, metric);

        // Submit the whole stream, then redeem tickets in submission
        // order — answers and the replay digest are independent of the
        // engine topology above.
        let t0 = Instant::now();
        let tickets: Vec<_> = qs
            .iter()
            .map(|q| engine.submit(Query::Vector(q.clone())).expect("admission"))
            .collect();
        let mut found = Vec::new();
        let mut hashes = Vec::new();
        for t in tickets {
            let out = t.wait().expect("query failed");
            hashes.push(hash_output(&out));
            match out {
                QueryOutput::Neighbors(hits) => {
                    found.push(hits.into_iter().map(|(i, _)| i).collect::<Vec<_>>())
                }
                other => panic!("graph family answered {other:?}"),
            }
        }
        let elapsed = t0.elapsed();
        let recall = hsu::datasets::recall_at_k(&found, &truth, 10);
        let digest = combine_hashes(hashes);

        // HSU instruction cost per distance at several datapath widths.
        let beats: Vec<usize> = [4usize, 8, 16, 32]
            .iter()
            .map(|&w| {
                HsuConfig::default()
                    .with_euclid_width(w)
                    .beats_for(metric, spec.dims)
            })
            .collect();

        println!(
            "{:<6} dim {:>4} ({}) | recall@10 {:.3} | {:.0} queries/s | replay {:#018x}",
            spec.abbr,
            spec.dims,
            metric,
            recall,
            queries as f64 / elapsed.as_secs_f64(),
            digest,
        );
        println!(
            "       beats per distance at euclid-width 4/8/16/32: {:?}",
            beats
        );
    }
}
