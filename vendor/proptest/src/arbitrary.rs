//! `any::<T>()`: full-domain strategies for primitives.

use std::marker::PhantomData;

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::{Rng, StandardSample};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: StandardSample> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}
