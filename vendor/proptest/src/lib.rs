//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates.io registry, so the workspace
//! vendors the property-testing API subset its tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] / [`prop_oneof!`],
//! - [`strategy::Strategy`] with `prop_map` / `prop_filter`, range and tuple
//!   strategies, [`collection::vec`], [`num::f32::NORMAL`], and
//!   [`arbitrary::any`].
//!
//! Differences from crates.io proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the deterministic stream
//!   index that regenerates it (generation is a pure function of the test
//!   name and that index), which is what the determinism-locked test suite
//!   needs; minimal counterexamples are not.
//! - `.proptest-regressions` files are ignored (they hold crates.io seeds).

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors the `prop` module path of the crates.io prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::new_value(&($strat), rng) {
                            ::std::result::Result::Ok(v) => v,
                            ::std::result::Result::Err(r) => {
                                return ::std::result::Result::Err(
                                    $crate::test_runner::TestCaseError::Reject(r.to_string()),
                                )
                            }
                        };
                    )+
                    #[allow(unused_mut)]
                    let mut run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    run()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the runner can report the reproducing stream.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Chooses uniformly among the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(a in 0u32..100, pair in (1usize..=8, -5i32..5)) {
            prop_assert!(a < 100);
            prop_assert!((1..=8).contains(&pair.0));
            prop_assert!((-5..5).contains(&pair.1));
        }

        #[test]
        fn map_filter_vec(xs in prop::collection::vec((0u64..50).prop_map(|v| v * 2), 1..10)) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            for x in xs {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn oneof_and_any(v in prop_oneof![(0u32..1).prop_map(|_| 1u8), (0u32..1).prop_map(|_| 2u8)],
                         b in any::<bool>()) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(b as u8 <= 1);
        }

        #[test]
        fn normal_floats_are_normal(f in prop::num::f32::NORMAL) {
            prop_assert!(f.is_normal());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0u64..1_000_000, 0u64..1_000_000);
        let mut r1 = crate::test_runner::TestRng::deterministic("t", 3);
        let mut r2 = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(
            strat.new_value(&mut r1).unwrap(),
            strat.new_value(&mut r2).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "failed at stream")]
    fn failures_name_the_stream() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
