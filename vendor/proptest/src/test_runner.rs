//! The deterministic case runner and its configuration.

use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runner configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected cases (filter/assume misses) before the run
    /// is abandoned as undertested.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` / filter exhaustion); the
    /// runner retries with fresh randomness.
    Reject(String),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// The random source handed to strategies: a ChaCha8 stream seeded from the
/// test name and a per-case stream index, so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Creates the generator for `(test, stream)`.
    pub fn deterministic(test: &str, stream: u64) -> Self {
        // FNV-1a over the test name, mixed with the stream index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Drives `config.cases` successful executions of `case`.
///
/// # Panics
///
/// Panics when a case fails (with the reproducing stream index) or when too
/// many cases are rejected.
pub fn run_cases(
    config: &ProptestConfig,
    test: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::deterministic(test, stream);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest '{test}': too many rejected cases ({rejected}); last: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest '{test}' failed at stream {stream} (deterministic; re-running \
                 reproduces it — the vendored proptest does not shrink):\n{msg}"
            ),
        }
        stream += 1;
    }
}
