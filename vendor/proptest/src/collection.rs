//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
