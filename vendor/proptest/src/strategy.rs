//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};

/// Why a strategy could not produce a value (e.g. a `prop_filter` predicate
/// refused everything it saw). The runner retries the whole case.
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of test values.
///
/// Unlike crates.io proptest there is no value tree and no shrinking: a
/// failing case is reported with the deterministic stream index that
/// reproduces it.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or rejects (filter exhaustion).
    ///
    /// # Errors
    ///
    /// Returns [`Rejection`] when the strategy cannot produce a value for
    /// this case; the runner discards the case and retries with fresh
    /// randomness.
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `true`; gives up (rejecting
    /// the case) after a bounded number of attempts.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..64 {
            let v = self.inner.new_value(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(format!("prop_filter exhausted: {}", self.whence)))
    }
}

impl<T: SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

impl<T: SampleUniform + Clone> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.new_value(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);

/// Boxes a strategy for storage in heterogeneous collections
/// (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A uniform choice among boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates the union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}
