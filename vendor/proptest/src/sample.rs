//! Sampling strategies (`prop::sample`).

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;

/// Picks one element of a fixed, non-empty list.
pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.options[rng.gen_range(0..self.options.len())].clone())
    }
}
