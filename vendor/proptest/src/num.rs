//! Numeric strategies (`prop::num`).

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::RngCore;

/// `f32` strategies.
pub mod f32 {
    use super::*;

    /// Generates normal (finite, non-zero, non-subnormal) `f32` values of
    /// either sign across the full exponent range.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// The normal-float strategy instance, mirroring
    /// `proptest::num::f32::NORMAL`.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> Result<f32, Rejection> {
            loop {
                let v = f32::from_bits(rng.next_u32());
                if v.is_normal() {
                    return Ok(v);
                }
            }
        }
    }
}

/// `f64` strategies.
pub mod f64 {
    use super::*;

    /// Generates normal (finite, non-zero, non-subnormal) `f64` values of
    /// either sign across the full exponent range.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// The normal-float strategy instance, mirroring
    /// `proptest::num::f64::NORMAL`.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_normal() {
                    return Ok(v);
                }
            }
        }
    }
}
