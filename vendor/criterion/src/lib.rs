//! Offline stand-in for the `criterion` crate.
//!
//! Covers the workspace's benchmark API surface: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`]. Each benchmark runs a short
//! calibrated timing loop and prints its mean iteration time. There are no
//! statistics, baselines or plots.
//!
//! When the bench binary is executed by `cargo test` (bench targets default
//! to `test = true`), it runs each benchmark for a single iteration so the
//! tier-1 suite stays fast; pass `--bench` (as `cargo bench` does) for the
//! timed loop.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
    /// Single-iteration smoke mode (under `cargo test`).
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; `cargo test` does not.
        let smoke = !std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            smoke,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.smoke, self.sample_size, self.measurement_time);
        f(&mut b);
        b.report(id);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut b = Bencher::new(
            self.criterion.smoke,
            self.criterion.sample_size,
            self.criterion.measurement_time,
        );
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(
            self.criterion.smoke,
            self.criterion.sample_size,
            self.criterion.measurement_time,
        );
        f(&mut b);
        b.report(&full);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier with a parameter component.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    measurement_time: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(smoke: bool, sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            smoke,
            sample_size,
            measurement_time,
            result: None,
        }
    }

    /// Times the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            let start = Instant::now();
            black_box(routine());
            self.result = Some((start.elapsed(), 1));
            return;
        }
        // Calibrate the per-sample iteration count so one sample lasts
        // roughly measurement_time / sample_size.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (self.measurement_time / self.sample_size.max(1) as u32).max(once);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut total = Duration::ZERO;
        let mut count = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += start.elapsed();
            count += iters;
        }
        self.result = Some((total, count));
    }

    fn report(&self, id: &str) {
        match self.result {
            Some((total, count)) if count > 0 => {
                let mean_ns = total.as_nanos() as f64 / count as f64;
                let unit = if self.smoke { "smoke" } else { "mean" };
                println!("{id:<40} {unit} {:>12.1} ns/iter ({count} iters)", mean_ns);
            }
            _ => println!("{id:<40} (no measurement)"),
        }
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        c.smoke = true;
        let mut runs = 0u32;
        c.bench_function("probe", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 1);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion {
            smoke: true,
            ..Default::default()
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
