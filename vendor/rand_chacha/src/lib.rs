//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream (the IETF variant's quarter-round
//! schedule over a 16-word state, 8 rounds, 64-bit block counter) behind the
//! vendored [`rand`] crate's [`RngCore`]/[`SeedableRng`] traits. The
//! workspace only uses [`ChaCha8Rng`], always seeded via `seed_from_u64`.
//!
//! The keystream is a standard ChaCha8 keystream, but `seed_from_u64` uses
//! the vendored `rand` SplitMix64 expansion, so streams are reproducible
//! against *this* vendor tree — exactly what the determinism-locked golden
//! reports require.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha stream cipher generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter + nonce state used to generate each block.
    state: [u32; BLOCK_WORDS],
    /// The current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// Word position within the current 16-word block (test hook).
    pub fn block_pos(&self) -> usize {
        self.index
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn blocks_differ_as_the_counter_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let v: u32 = rng.gen_range(0..100);
        assert!(v < 100);
        let f: f32 = rng.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn chacha_quarter_round_matches_rfc_vector() {
        // RFC 7539 §2.1.1 test vector.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }
}
