//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no route to a crates.io
//! registry, so the workspace vendors the *API subset it actually uses*:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64 `seed_from_u64`
//! convention of `rand_core` 0.6), and the [`Rng`] extension trait with
//! `gen`, `gen_range` (half-open and inclusive ranges over the primitive
//! integers and floats) and `gen_bool`.
//!
//! Determinism contract: every method is a pure function of the underlying
//! generator stream. The *stream itself* is *not* guaranteed to match the
//! crates.io `rand` implementation bit-for-bit (uniform-int sampling differs),
//! so golden simulator snapshots are tied to this vendored implementation —
//! see `tests/golden_reports.rs` at the workspace root.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 bits of the stream (two `u32` draws, low first).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` from consecutive `u32` draws (little-endian).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be created from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the `rand_core`
    /// 0.6 convention) and seeds the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = (sm.next() as u32).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types drawable uniformly from the generator's full word range (the
/// `Standard` distribution of crates.io rand).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    // Handle the full-domain case without overflow.
                    match (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) {
                        0 => return <$t as StandardSample>::sample(rng),
                        s => s,
                    }
                } else {
                    assert!(lo < hi, "gen_range called with an empty range");
                    (hi as u128).wrapping_sub(lo as u128)
                };
                if span == 0 {
                    // Inclusive range covering the whole u128-cast domain.
                    return <$t as StandardSample>::sample(rng);
                }
                // Rejection sampling over the top zone to avoid modulo bias.
                let zone = u128::MAX - (u128::MAX % span + 1) % span;
                loop {
                    let draw = <u128 as StandardSample>::sample(rng);
                    if draw <= zone {
                        return lo.wrapping_add((draw % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range called with an empty range"
                );
                let unit = <$t as StandardSample>::sample(rng);
                let v = lo + (hi - lo) * unit;
                if v >= hi && !inclusive { lo } else { v }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full-range distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring the crates.io module layout used in imports.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9E3779B9);
            (self.0 >> 16) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(1..=36usize);
            assert!((1..=36).contains(&w));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i32 = rng.gen_range(-100i32..100);
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
